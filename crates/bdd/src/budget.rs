//! Resource budgets, cooperative cancellation, graceful degradation and
//! consistency checking for the BDD manager.
//!
//! A [`Budget`] bounds a symbolic computation along four axes:
//!
//! * **operation ticks** — every recursive step of the memoized operations
//!   (`apply`, `ite`, quantification, renaming, cofactoring) counts one
//!   tick; a tick ceiling bounds total work deterministically,
//! * **wall clock** — a deadline checked every 1024 ticks (so unbudgeted
//!   hot loops never touch the clock),
//! * **cooperative cancellation** — shared [`AtomicBool`] flags polled on
//!   the same cadence, letting another thread stop a synthesis,
//! * **live nodes** — a ceiling on the unique table, enforced at *safe
//!   points* (see [`Manager::enforce_node_budget`]) where the caller can
//!   name every handle it holds; on pressure the manager first degrades
//!   gracefully (mark-and-sweep [`Manager::gc`] over the registered roots,
//!   then one pair-block sifting retry) before surfacing
//!   [`BddError::BudgetExhausted`].
//!
//! Budgets also host the deterministic **fault injector** used by the
//! robustness test-suite: [`Budget::with_fail_at_tick`] forces a
//! `BudgetExhausted` error at the N-th tick, letting tests sweep an error
//! through every point of a synthesis run and assert that the error
//! surfaces structurally with the manager left consistent
//! ([`Manager::check_consistency`]).
//!
//! The fallible operation variants (`try_and`, `try_ite`, `try_exists`,
//! …) return `Result<_, BddError>`; the classic infallible names remain as
//! thin wrappers that panic *only* if a caller installs a budget and then
//! bypasses the `try_*` API. Without a budget installed the fast path is a
//! single counter increment and a branch.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::hash::FxHashSet;
use crate::manager::{Bdd, Manager, VarId, TERMINAL_LEVEL};

/// Which budget axis ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The live-node ceiling, after GC and one sifting retry failed to get
    /// back under it.
    Nodes,
    /// The operation-tick ceiling.
    Ticks,
    /// The wall-clock deadline.
    WallClock,
    /// A cooperative-cancel flag was raised by another thread.
    Cancelled,
    /// The deterministic fault injector fired ([`Budget::with_fail_at_tick`]).
    Injected,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::Nodes => "live-node ceiling",
            Resource::Ticks => "operation-tick ceiling",
            Resource::WallClock => "wall-clock deadline",
            Resource::Cancelled => "cancelled",
            Resource::Injected => "injected fault",
        };
        f.write_str(s)
    }
}

/// Structured error surfaced by the fallible (`try_*`) BDD operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// The installed [`Budget`] was exhausted (or a fault was injected).
    BudgetExhausted {
        /// The axis that ran out.
        resource: Resource,
        /// Operation ticks consumed when the limit was hit.
        ticks: u64,
        /// Live nodes in the manager when the limit was hit.
        live_nodes: usize,
    },
}

impl BddError {
    /// The exhausted resource.
    pub fn resource(&self) -> Resource {
        match self {
            BddError::BudgetExhausted { resource, .. } => *resource,
        }
    }
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::BudgetExhausted { resource, ticks, live_nodes } => write!(
                f,
                "BDD budget exhausted ({resource}) after {ticks} operation ticks \
                 with {live_nodes} live nodes"
            ),
        }
    }
}

impl std::error::Error for BddError {}

/// A resource budget for symbolic computation. All limits are optional and
/// compose; [`Budget::unlimited`] (the default) never fails.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    pub(crate) max_live_nodes: Option<usize>,
    pub(crate) max_ticks: Option<u64>,
    pub(crate) timeout: Option<Duration>,
    pub(crate) cancel: Vec<Arc<AtomicBool>>,
    pub(crate) fail_at_tick: Option<u64>,
}

impl Budget {
    /// A budget with no limits. Installing it still counts ticks (useful
    /// for instrumentation) but never fails.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Cap the number of live nodes. Enforced at safe points via
    /// [`Manager::enforce_node_budget`], with graceful degradation (GC,
    /// then one sifting retry) before erroring.
    pub fn with_max_nodes(mut self, n: usize) -> Self {
        self.max_live_nodes = Some(n);
        self
    }

    /// Cap the number of operation ticks. A cap of 0 fails on the very
    /// first operation.
    pub fn with_max_ticks(mut self, n: u64) -> Self {
        self.max_ticks = Some(n);
        self
    }

    /// Set a wall-clock deadline, measured from [`Manager::set_budget`].
    pub fn with_timeout(mut self, d: Duration) -> Self {
        self.timeout = Some(d);
        self
    }

    /// Attach a cooperative-cancel flag; raising it makes the next polled
    /// operation fail with [`Resource::Cancelled`]. May be called several
    /// times — any raised flag cancels.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel.push(flag);
        self
    }

    /// Deterministic fault injection: fail with [`Resource::Injected`] at
    /// tick `n` (and every tick after it). Test-only in spirit; ticks are
    /// deterministic for a fixed computation, so a sweep over `n` drives an
    /// error through every point of a run.
    pub fn with_fail_at_tick(mut self, n: u64) -> Self {
        self.fail_at_tick = Some(n);
        self
    }

    /// Does this budget impose any limit at all?
    pub fn is_limited(&self) -> bool {
        self.max_live_nodes.is_some()
            || self.max_ticks.is_some()
            || self.timeout.is_some()
            || !self.cancel.is_empty()
            || self.fail_at_tick.is_some()
    }
}

/// Internal per-manager budget state.
#[derive(Debug, Default)]
pub(crate) struct BudgetState {
    pub(crate) active: Option<ActiveBudget>,
    pub(crate) ticks: u64,
}

#[derive(Debug)]
pub(crate) struct ActiveBudget {
    spec: Budget,
    deadline: Option<Instant>,
    sift_tried: bool,
}

/// How often (in ticks) the wall clock and cancel flags are polled.
const POLL_MASK: u64 = 0x3ff;

pub(crate) fn expect_budget<T>(r: Result<T, BddError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!(
            "budget exhausted inside an infallible BDD operation \
             (use the try_* variants when a budget is installed): {e}"
        ),
    }
}

impl Manager {
    /// Install a budget. Resets the tick counter to zero and starts the
    /// wall-clock deadline (if any) now. Replaces any previous budget.
    pub fn set_budget(&mut self, budget: Budget) {
        let deadline = budget.timeout.map(|d| Instant::now() + d);
        self.budget.ticks = 0;
        self.budget.active = Some(ActiveBudget { spec: budget, deadline, sift_tried: false });
    }

    /// Remove the installed budget. The tick counter keeps its value so
    /// callers can read [`Manager::ticks_used`] afterwards.
    pub fn clear_budget(&mut self) {
        self.budget.active = None;
    }

    /// Is a budget currently installed?
    pub fn has_budget(&self) -> bool {
        self.budget.active.is_some()
    }

    /// Operation ticks consumed since the last [`Manager::set_budget`]
    /// (or since manager creation if none was ever installed).
    pub fn ticks_used(&self) -> u64 {
        self.budget.ticks
    }

    /// Register the caller's persistent root set. [`Manager::enforce_node_budget`]
    /// preserves these (plus its `extra_roots` argument) when it collects
    /// garbage under node pressure, and [`Manager::check_consistency`]
    /// verifies none of them dangles.
    pub fn set_gc_roots(&mut self, roots: Vec<Bdd>) {
        self.gc_roots = roots;
    }

    /// The currently registered persistent roots.
    pub fn gc_roots(&self) -> &[Bdd] {
        &self.gc_roots
    }

    /// Register the `(current, primed)` variable pairs of an interleaved
    /// encoding. When the node ceiling is hit, the degradation path may run
    /// one [`Manager::sift_pairs`] pass over these (which preserves interned
    /// varsets and rename maps — see `reorder.rs`).
    pub fn set_reorder_pairs(&mut self, pairs: Vec<(VarId, VarId)>) {
        self.reorder_pairs = pairs;
    }

    /// One budget tick. Called at the top of every recursive step of the
    /// memoized operations; the no-budget fast path is an increment and a
    /// branch.
    #[inline]
    pub(crate) fn tick(&mut self) -> Result<(), BddError> {
        self.budget.ticks += 1;
        if self.budget.active.is_none() {
            Ok(())
        } else {
            self.tick_slow()
        }
    }

    #[cold]
    fn tick_slow(&mut self) -> Result<(), BddError> {
        let t = self.budget.ticks;
        let a = self.budget.active.as_ref().expect("tick_slow without active budget");
        if let Some(n) = a.spec.fail_at_tick {
            if t >= n {
                return Err(self.budget_error(Resource::Injected));
            }
        }
        if let Some(n) = a.spec.max_ticks {
            if t > n {
                return Err(self.budget_error(Resource::Ticks));
            }
        }
        if t & POLL_MASK == 0 {
            if let Some(d) = a.deadline {
                if Instant::now() >= d {
                    return Err(self.budget_error(Resource::WallClock));
                }
            }
            for flag in &a.spec.cancel {
                if flag.load(Ordering::Relaxed) {
                    return Err(self.budget_error(Resource::Cancelled));
                }
            }
        }
        Ok(())
    }

    /// A `BudgetExhausted` error snapshotting the current counters. Public
    /// so higher layers (e.g. a pre-flight zero-budget check) can surface
    /// the same structured error.
    pub fn budget_error(&self, resource: Resource) -> BddError {
        BddError::BudgetExhausted {
            resource,
            ticks: self.budget.ticks,
            live_nodes: self.live_nodes(),
        }
    }

    /// Check the budget without doing any work (a "zeroth tick"): lets
    /// callers fail fast before starting a phase. Checks the injector, the
    /// tick ceiling, the deadline and the cancel flags.
    pub fn check_budget(&mut self) -> Result<(), BddError> {
        let Some(a) = self.budget.active.as_ref() else { return Ok(()) };
        let t = self.budget.ticks;
        if let Some(n) = a.spec.fail_at_tick {
            if t + 1 >= n {
                return Err(self.budget_error(Resource::Injected));
            }
        }
        if let Some(n) = a.spec.max_ticks {
            if t >= n {
                return Err(self.budget_error(Resource::Ticks));
            }
        }
        if let Some(d) = a.deadline {
            if Instant::now() >= d {
                return Err(self.budget_error(Resource::WallClock));
            }
        }
        for flag in &a.spec.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(self.budget_error(Resource::Cancelled));
            }
        }
        Ok(())
    }

    /// Enforce the live-node ceiling at a *safe point* — a moment when the
    /// registered [`Manager::set_gc_roots`] set plus `extra_roots` covers
    /// every handle any caller still needs (intermediate results inside an
    /// operation are *not* roots, which is why this is never called from
    /// within the recursions).
    ///
    /// Degradation order on pressure:
    /// 1. mark-and-sweep [`Manager::gc`] over registered + extra roots,
    /// 2. once per installed budget: a [`Manager::sift_pairs`] reordering
    ///    retry (only if interleaved pairs were registered),
    /// 3. [`BddError::BudgetExhausted`] with [`Resource::Nodes`].
    pub fn enforce_node_budget(&mut self, extra_roots: &[Bdd]) -> Result<(), BddError> {
        let Some(max) = self.budget.active.as_ref().and_then(|a| a.spec.max_live_nodes) else {
            return Ok(());
        };
        if self.live_nodes() <= max {
            return Ok(());
        }
        let pressured = self.live_nodes();
        let mut roots = self.gc_roots.clone();
        roots.extend_from_slice(extra_roots);
        self.gc(&roots);
        self.trace_degrade("gc", pressured, max);
        if self.live_nodes() <= max {
            return Ok(());
        }
        let sift_tried = self.budget.active.as_ref().is_none_or(|a| a.sift_tried);
        if !sift_tried && !self.reorder_pairs.is_empty() {
            if let Some(a) = self.budget.active.as_mut() {
                a.sift_tried = true;
            }
            let pairs = self.reorder_pairs.clone();
            self.sift_pairs(&pairs, &roots);
            self.trace_degrade("sift_pairs", pressured, max);
            if self.live_nodes() <= max {
                return Ok(());
            }
        }
        self.trace_degrade("exhausted", pressured, max);
        Err(self.budget_error(Resource::Nodes))
    }

    /// Emit a `bdd.degrade` event describing one step of the node-ceiling
    /// degradation path.
    fn trace_degrade(&self, action: &'static str, pressured: usize, ceiling: usize) {
        if self.tracer.level_enabled(stsyn_obs::TraceLevel::Info) {
            self.tracer.info(
                "bdd.degrade",
                &[
                    ("action", stsyn_obs::Json::from(action)),
                    ("pressured", stsyn_obs::Json::from(pressured as u64)),
                    ("ceiling", stsyn_obs::Json::from(ceiling as u64)),
                    ("live", stsyn_obs::Json::from(self.live_nodes() as u64)),
                ],
            );
        }
    }

    /// Deep structural consistency check, intended for use after a failed
    /// or interrupted computation (it is `O(live nodes)` and allocates).
    ///
    /// Verifies:
    /// * the unique table and the node arena agree, and every node's
    ///   variable sits strictly above its children's in the current order,
    /// * every arena slot is accounted for exactly once (terminal, live in
    ///   the unique table, or on the free list),
    /// * the free list has no duplicates, no terminals and no out-of-range
    ///   slots,
    /// * no registered root dangles: the full cone of every root avoids
    ///   the free list.
    pub fn check_consistency(&self) -> Result<(), String> {
        if !self.check_order_invariant() {
            return Err("unique table out of sync with arena, or variable order violated".into());
        }
        let cap = self.nodes.len();
        let mut free_set: FxHashSet<u32> = FxHashSet::default();
        for &slot in &self.free {
            if slot < 2 {
                return Err(format!("terminal slot {slot} on the free list"));
            }
            if slot as usize >= cap {
                return Err(format!("free slot {slot} out of range (arena size {cap})"));
            }
            if !free_set.insert(slot) {
                return Err(format!("slot {slot} appears twice on the free list"));
            }
        }
        if self.unique.len() + free_set.len() + 2 != cap {
            return Err(format!(
                "slot accounting broken: {} unique + {} free + 2 terminals != {} allocated",
                self.unique.len(),
                free_set.len(),
                cap
            ));
        }
        for &idx in self.unique.values() {
            if free_set.contains(&idx) {
                return Err(format!("slot {idx} is both live (unique table) and free"));
            }
        }
        // No dangling roots: every node in every root's cone must be live.
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut stack: Vec<u32> = Vec::new();
        for &r in &self.gc_roots {
            if r.0 as usize >= cap {
                return Err(format!("registered root {} out of range", r.0));
            }
            stack.push(r.0);
        }
        while let Some(idx) = stack.pop() {
            if !seen.insert(idx) {
                continue;
            }
            if free_set.contains(&idx) {
                return Err(format!("registered root cone reaches freed slot {idx}"));
            }
            let n = self.nodes[idx as usize];
            if n.var != TERMINAL_LEVEL {
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_fails() {
        let mut m = Manager::new();
        let vs = m.new_vars(8);
        m.set_budget(Budget::unlimited());
        let lits: Vec<Bdd> = vs.iter().map(|&v| m.var(v)).collect();
        let f = m.try_and_many(&lits).unwrap();
        assert!(!f.is_const());
        assert!(m.ticks_used() > 0);
    }

    #[test]
    fn zero_tick_budget_fails_immediately() {
        let mut m = Manager::new();
        let vs = m.new_vars(2);
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        m.set_budget(Budget::unlimited().with_max_ticks(0));
        let err = m.try_and(a, b).unwrap_err();
        assert_eq!(err.resource(), Resource::Ticks);
        assert!(m.check_budget().is_err());
    }

    #[test]
    fn fail_at_tick_is_deterministic() {
        let run = |fail_at: u64| -> (u64, Result<Bdd, BddError>) {
            let mut m = Manager::new();
            let vs = m.new_vars(12);
            m.set_budget(Budget::unlimited().with_fail_at_tick(fail_at));
            let mut f = Bdd::TRUE;
            let r = (|| {
                for i in 0..6 {
                    let x = m.var(vs[i]);
                    let y = m.var(vs[i + 6]);
                    let t = m.try_xor(x, y)?;
                    f = m.try_and(f, t)?;
                }
                Ok(f)
            })();
            (m.ticks_used(), r)
        };
        let (t_clean, ok) = run(u64::MAX);
        assert!(ok.is_ok());
        // Inject at a mid-run tick twice: identical failure point.
        let at = t_clean / 2;
        let (t1, r1) = run(at);
        let (t2, r2) = run(at);
        assert_eq!(t1, t2);
        assert_eq!(r1, r2);
        assert_eq!(r1.unwrap_err().resource(), Resource::Injected);
    }

    #[test]
    fn cancel_flag_stops_work() {
        let mut m = Manager::new();
        let vs = m.new_vars(40);
        let flag = Arc::new(AtomicBool::new(true)); // pre-raised
        m.set_budget(Budget::unlimited().with_cancel(flag));
        // The flag is polled every POLL_MASK+1 ticks; build something big
        // enough to cross the boundary.
        let mut r = Ok(Bdd::TRUE);
        let mut f = Bdd::TRUE;
        'outer: for i in 0..20 {
            let x = m.var(vs[i]);
            let y = m.var(vs[i + 20]);
            for g in [x, y] {
                match m.try_and(f, g) {
                    Ok(v) => f = v,
                    Err(e) => {
                        r = Err(e);
                        break 'outer;
                    }
                }
            }
            let big = m.try_xor(f, x).and_then(|t| m.try_or(t, y));
            match big {
                Ok(_) => {}
                Err(e) => {
                    r = Err(e);
                    break 'outer;
                }
            }
        }
        // Either the computation was too small to cross a poll boundary
        // (then check_budget reports it) or we got the structured error.
        match r {
            Err(e) => assert_eq!(e.resource(), Resource::Cancelled),
            Ok(_) => assert_eq!(m.check_budget().unwrap_err().resource(), Resource::Cancelled),
        }
    }

    #[test]
    fn deadline_in_the_past_fails() {
        let mut m = Manager::new();
        let _vs = m.new_vars(2);
        m.set_budget(Budget::unlimited().with_timeout(Duration::from_secs(0)));
        assert_eq!(m.check_budget().unwrap_err().resource(), Resource::WallClock);
    }

    #[test]
    fn node_ceiling_degrades_via_gc_then_errors() {
        let mut m = Manager::new();
        let vs = m.new_vars(16);
        // Build garbage, keep one small root.
        let lits: Vec<Bdd> = vs.iter().map(|&v| m.var(v)).collect();
        let keep = m.and(lits[0], lits[1]);
        for i in 0..8 {
            let _garbage = m.xor(lits[i], lits[i + 8]);
        }
        m.set_gc_roots(vec![keep]);
        m.set_budget(Budget::unlimited().with_max_nodes(m.live_nodes() - 4));
        // GC alone gets back under the ceiling.
        assert!(m.enforce_node_budget(&[]).is_ok());
        assert!(m.live_nodes() <= m.live_nodes());
        // An impossible ceiling errors with Resource::Nodes.
        m.set_budget(Budget::unlimited().with_max_nodes(1));
        let err = m.enforce_node_budget(&[]).unwrap_err();
        assert_eq!(err.resource(), Resource::Nodes);
        assert!(m.check_consistency().is_ok());
    }

    #[test]
    fn clear_budget_restores_infallibility() {
        let mut m = Manager::new();
        let vs = m.new_vars(2);
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        m.set_budget(Budget::unlimited().with_max_ticks(0));
        assert!(m.try_and(a, b).is_err());
        m.clear_budget();
        let f = m.and(a, b); // must not panic
        assert!(!f.is_const());
    }

    #[test]
    fn consistency_check_accepts_healthy_manager() {
        let mut m = Manager::new();
        let vs = m.new_vars(6);
        let lits: Vec<Bdd> = vs.iter().map(|&v| m.var(v)).collect();
        let f = m.and_many(&lits);
        let g = m.or_many(&lits);
        m.set_gc_roots(vec![f, g]);
        m.gc(&[f, g]);
        assert!(m.check_consistency().is_ok());
    }

    #[test]
    fn consistency_check_catches_dangling_root() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let f = m.and(a, b);
        m.set_gc_roots(vec![f]);
        m.gc(&[]); // collect *without* the registered root: f now dangles
        assert!(m.check_consistency().is_err());
    }

    #[test]
    fn budget_display_is_readable() {
        let e = BddError::BudgetExhausted { resource: Resource::Ticks, ticks: 42, live_nodes: 7 };
        let s = e.to_string();
        assert!(s.contains("42"), "{s}");
        assert!(s.contains("operation-tick"), "{s}");
        let src: &dyn std::error::Error = &e;
        assert!(src.source().is_none());
    }
}
