//! Cross-cutting unit tests for the BDD package: a brute-force truth-table
//! oracle over few variables, exercising all operations together.

use crate::{Bdd, Manager, VarId};

/// Build every assignment of `n` variables.
fn assignments(n: usize) -> Vec<Vec<bool>> {
    (0..1usize << n).map(|bits| (0..n).map(|i| (bits >> i) & 1 == 1).collect()).collect()
}

/// A tiny random-expression generator (deterministic, seedless LCG) used to
/// fuzz the algebra against the truth-table oracle without pulling proptest
/// into the unit-test tier.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

type BoolOracle = Box<dyn Fn(&[bool]) -> bool>;

/// Evaluate the same random expression with BDDs and with plain bools.
fn random_expr(m: &mut Manager, vars: &[VarId], rng: &mut Lcg, depth: u32) -> (Bdd, BoolOracle) {
    if depth == 0 || rng.next().is_multiple_of(4) {
        let i = (rng.next() as usize) % vars.len();
        let v = vars[i];
        return (m.var(v), Box::new(move |a: &[bool]| a[v.0 as usize]));
    }
    match rng.next() % 5 {
        0 => {
            let (f, ef) = random_expr(m, vars, rng, depth - 1);
            (m.not(f), Box::new(move |a: &[bool]| !ef(a)))
        }
        1 => {
            let (f, ef) = random_expr(m, vars, rng, depth - 1);
            let (g, eg) = random_expr(m, vars, rng, depth - 1);
            (m.and(f, g), Box::new(move |a: &[bool]| ef(a) && eg(a)))
        }
        2 => {
            let (f, ef) = random_expr(m, vars, rng, depth - 1);
            let (g, eg) = random_expr(m, vars, rng, depth - 1);
            (m.or(f, g), Box::new(move |a: &[bool]| ef(a) || eg(a)))
        }
        3 => {
            let (f, ef) = random_expr(m, vars, rng, depth - 1);
            let (g, eg) = random_expr(m, vars, rng, depth - 1);
            (m.xor(f, g), Box::new(move |a: &[bool]| ef(a) ^ eg(a)))
        }
        _ => {
            let (f, ef) = random_expr(m, vars, rng, depth - 1);
            let (g, eg) = random_expr(m, vars, rng, depth - 1);
            let (h, eh) = random_expr(m, vars, rng, depth - 1);
            (m.ite(f, g, h), Box::new(move |a: &[bool]| if ef(a) { eg(a) } else { eh(a) }))
        }
    }
}

#[test]
fn fuzz_algebra_against_truth_tables() {
    let mut rng = Lcg(0x5151_2026);
    for round in 0..60 {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let (f, oracle) = random_expr(&mut m, &vars, &mut rng, 5);
        for asg in assignments(5) {
            assert_eq!(m.eval(f, &asg), oracle(&asg), "round {round}: mismatch at {asg:?}");
        }
        // Canonicity: rebuilding from cubes gives the identical handle.
        let cubes: Vec<_> = m.cubes(f).collect();
        let mut rebuilt = Bdd::FALSE;
        for cube in cubes {
            let lits: Vec<Bdd> = cube.iter().map(|&(v, b)| m.literal(v, b)).collect();
            let c = m.and_many(&lits);
            rebuilt = m.or(rebuilt, c);
        }
        assert_eq!(rebuilt, f, "round {round}: cube cover not canonical");
    }
}

#[test]
fn fuzz_quantification_against_oracle() {
    let mut rng = Lcg(0xdead_beef);
    for round in 0..40 {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let (f, oracle) = random_expr(&mut m, &vars, &mut rng, 4);
        let qi = (rng.next() as usize) % 5;
        let qv = vars[qi];
        let set = m.varset(&[qv]);
        let ex = m.exists(f, set);
        let fa = m.forall(f, set);
        for asg in assignments(5) {
            let mut a0 = asg.clone();
            let mut a1 = asg.clone();
            a0[qi] = false;
            a1[qi] = true;
            let expect_ex = oracle(&a0) || oracle(&a1);
            let expect_fa = oracle(&a0) && oracle(&a1);
            assert_eq!(m.eval(ex, &asg), expect_ex, "round {round} exists");
            assert_eq!(m.eval(fa, &asg), expect_fa, "round {round} forall");
        }
    }
}

#[test]
fn fuzz_and_exists_is_fused_correctly() {
    let mut rng = Lcg(0x1234_5678);
    for _ in 0..40 {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let (f, _) = random_expr(&mut m, &vars, &mut rng, 4);
        let (g, _) = random_expr(&mut m, &vars, &mut rng, 4);
        let q: Vec<VarId> = vars.iter().copied().filter(|_| rng.next().is_multiple_of(2)).collect();
        let set = m.varset(&q);
        let fused = m.and_exists(f, g, set);
        let plain = {
            let conj = m.and(f, g);
            m.exists(conj, set)
        };
        assert_eq!(fused, plain);
    }
}

#[test]
fn gc_mid_computation_preserves_roots() {
    let mut rng = Lcg(42);
    let mut m = Manager::new();
    let vars = m.new_vars(5);
    let (f, oracle_f) = random_expr(&mut m, &vars, &mut rng, 5);
    let (g, oracle_g) = random_expr(&mut m, &vars, &mut rng, 5);
    m.gc(&[f, g]);
    let h = m.and(f, g);
    for asg in assignments(5) {
        assert_eq!(m.eval(h, &asg), oracle_f(&asg) && oracle_g(&asg));
    }
    // GC with only h rooted must keep h's cone intact.
    m.gc(&[h]);
    for asg in assignments(5) {
        assert_eq!(m.eval(h, &asg), oracle_f(&asg) && oracle_g(&asg));
    }
}

#[test]
fn sat_count_random_cross_check() {
    let mut rng = Lcg(777);
    for _ in 0..30 {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let (f, oracle) = random_expr(&mut m, &vars, &mut rng, 4);
        let expect = assignments(5).iter().filter(|a| oracle(a)).count();
        assert_eq!(m.sat_count(f, 5), expect as f64);
    }
}
