//! Property-based verification of the BDD package against a truth-table
//! oracle: random boolean expressions over ≤ 5 variables are compiled to
//! BDDs and to plain closures, and every operation's semantics, the
//! canonical-form guarantee, quantification, renaming and the
//! Coudert–Madre minimizers are checked on all 32 assignments.

// Property tests need the external `proptest` crate, which is not
// available offline; opt in with `--features proptest` after restoring the
// dev-dependency (see Cargo.toml).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use stsyn_bdd::{Bdd, Manager, VarId};

/// A serializable random boolean expression.
#[derive(Debug, Clone)]
enum Form {
    Var(usize),
    Not(Box<Form>),
    And(Box<Form>, Box<Form>),
    Or(Box<Form>, Box<Form>),
    Xor(Box<Form>, Box<Form>),
    Ite(Box<Form>, Box<Form>, Box<Form>),
    Const(bool),
}

fn arb_form() -> impl Strategy<Value = Form> {
    let leaf = prop_oneof![(0usize..5).prop_map(Form::Var), any::<bool>().prop_map(Form::Const),];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| Form::Not(Box::new(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Form::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Form::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn build(m: &mut Manager, vars: &[VarId], f: &Form) -> Bdd {
    match f {
        Form::Var(i) => m.var(vars[*i]),
        Form::Const(b) => {
            if *b {
                m.one()
            } else {
                m.zero()
            }
        }
        Form::Not(a) => {
            let x = build(m, vars, a);
            m.not(x)
        }
        Form::And(a, b) => {
            let (x, y) = (build(m, vars, a), build(m, vars, b));
            m.and(x, y)
        }
        Form::Or(a, b) => {
            let (x, y) = (build(m, vars, a), build(m, vars, b));
            m.or(x, y)
        }
        Form::Xor(a, b) => {
            let (x, y) = (build(m, vars, a), build(m, vars, b));
            m.xor(x, y)
        }
        Form::Ite(a, b, c) => {
            let (x, y, z) = (build(m, vars, a), build(m, vars, b), build(m, vars, c));
            m.ite(x, y, z)
        }
    }
}

fn eval(f: &Form, asg: &[bool]) -> bool {
    match f {
        Form::Var(i) => asg[*i],
        Form::Const(b) => *b,
        Form::Not(a) => !eval(a, asg),
        Form::And(a, b) => eval(a, asg) && eval(b, asg),
        Form::Or(a, b) => eval(a, asg) || eval(b, asg),
        Form::Xor(a, b) => eval(a, asg) ^ eval(b, asg),
        Form::Ite(a, b, c) => {
            if eval(a, asg) {
                eval(b, asg)
            } else {
                eval(c, asg)
            }
        }
    }
}

fn assignments() -> Vec<Vec<bool>> {
    (0..32u32).map(|bits| (0..5).map(|i| (bits >> i) & 1 == 1).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_bdd_matches_oracle(form in arb_form()) {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = build(&mut m, &vars, &form);
        for asg in assignments() {
            prop_assert_eq!(m.eval(f, &asg), eval(&form, &asg));
        }
    }

    #[test]
    fn canonicity_equivalent_forms_share_a_handle(a in arb_form(), b in arb_form()) {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let fa = build(&mut m, &vars, &a);
        let fb = build(&mut m, &vars, &b);
        let equivalent = assignments().iter().all(|asg| eval(&a, asg) == eval(&b, asg));
        prop_assert_eq!(fa == fb, equivalent);
    }

    #[test]
    fn quantification_matches_oracle(form in arb_form(), qvar in 0usize..5) {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = build(&mut m, &vars, &form);
        let set = m.varset(&[vars[qvar]]);
        let ex = m.exists(f, set);
        let fa = m.forall(f, set);
        for asg in assignments() {
            let mut a0 = asg.clone();
            let mut a1 = asg.clone();
            a0[qvar] = false;
            a1[qvar] = true;
            prop_assert_eq!(m.eval(ex, &asg), eval(&form, &a0) || eval(&form, &a1));
            prop_assert_eq!(m.eval(fa, &asg), eval(&form, &a0) && eval(&form, &a1));
        }
    }

    #[test]
    fn sat_count_matches_oracle(form in arb_form()) {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = build(&mut m, &vars, &form);
        let expected = assignments().iter().filter(|asg| eval(&form, asg)).count();
        prop_assert_eq!(m.sat_count(f, 5), expected as f64);
    }

    #[test]
    fn cube_cover_is_exact(form in arb_form()) {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = build(&mut m, &vars, &form);
        let mut rebuilt = Bdd::FALSE;
        for cube in m.cubes(f).collect::<Vec<_>>() {
            let lits: Vec<Bdd> = cube.iter().map(|&(v, b)| m.literal(v, b)).collect();
            let c = m.and_many(&lits);
            rebuilt = m.or(rebuilt, c);
        }
        prop_assert_eq!(rebuilt, f);
    }

    #[test]
    fn minimizers_agree_on_care_set(f_form in arb_form(), c_form in arb_form()) {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = build(&mut m, &vars, &f_form);
        let c = build(&mut m, &vars, &c_form);
        prop_assume!(!c.is_false());
        let g1 = m.constrain(f, c);
        let g2 = m.restrict(f, c);
        let fc = m.and(f, c);
        let g1c = m.and(g1, c);
        let g2c = m.and(g2, c);
        prop_assert_eq!(g1c, fc);
        prop_assert_eq!(g2c, fc);
        // restrict never introduces variables outside f's support.
        let sup_f = m.support(f);
        for v in m.support(g2) {
            prop_assert!(sup_f.contains(&v));
        }
    }

    #[test]
    fn gc_preserves_rooted_semantics(form in arb_form()) {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = build(&mut m, &vars, &form);
        // Create garbage, collect with only f rooted.
        for i in 0..4 {
            let a = m.var(vars[i]);
            let b = m.var(vars[i + 1]);
            let _ = m.xor(a, b);
        }
        m.gc(&[f]);
        for asg in assignments() {
            prop_assert_eq!(m.eval(f, &asg), eval(&form, &asg));
        }
    }

    #[test]
    fn sift_preserves_semantics_and_never_grows(form in arb_form()) {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = build(&mut m, &vars, &form);
        let (before, after) = m.sift(&[f]);
        prop_assert!(after <= before, "sift grew the root cone {before} → {after}");
        prop_assert!(m.check_order_invariant());
        for asg in assignments() {
            prop_assert_eq!(m.eval(f, &asg), eval(&form, &asg));
        }
        // The manager stays fully operational in the new order.
        let g = m.not(f);
        let h = m.or(f, g);
        prop_assert!(h.is_true());
    }

    #[test]
    fn rename_shifts_semantics(form in arb_form()) {
        // Map variable i → i + 5 (order preserving); the renamed function
        // over shifted assignments must equal the original.
        let mut m = Manager::new();
        let lo = m.new_vars(5);
        let hi = m.new_vars(5);
        let f = build(&mut m, &lo, &form);
        let pairs: Vec<(VarId, VarId)> =
            lo.iter().copied().zip(hi.iter().copied()).collect();
        let map = m.rename_map(&pairs);
        let g = m.rename(f, map);
        for asg in assignments() {
            let mut shifted = vec![false; 10];
            shifted[5..].copy_from_slice(&asg);
            prop_assert_eq!(m.eval(g, &shifted), eval(&form, &asg));
        }
    }
}

// --- Serialization round-trips (dump_bdds / load_bdds) --------------------

/// Build the same form over `n ≥ 5` variables laid out in an arbitrary
/// variable order: `perm[level] = var` is derived from a shuffle seed.
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        order.swap(i, (s % (i as u64 + 1)) as usize);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dump_load_round_trips_fresh_manager(
        forms in proptest::collection::vec(arb_form(), 1..4),
        extra in 0usize..4,
        seed in any::<u64>(),
    ) {
        // Random variable count (5..9) and random target order.
        let n = 5 + extra;
        let mut m = Manager::new();
        let vars = m.new_vars(n);
        let roots: Vec<Bdd> = forms.iter().map(|f| build(&mut m, &vars, f)).collect();
        let target: Vec<VarId> = shuffled(n, seed).into_iter().map(|v| vars[v]).collect();
        m.reorder_to(&target, &roots);
        prop_assert!(m.check_order_invariant());

        let dump = m.dump_bdds_to_vec(&roots);
        let (m2, loaded) = Manager::load_bdds(&mut &dump[..]).unwrap();

        // Variable order, node counts and semantics survive the trip.
        prop_assert_eq!(m.current_order(), m2.current_order());
        prop_assert_eq!(m.node_count_many(&roots), m2.node_count_many(&loaded));
        for (k, (&f, &g)) in roots.iter().zip(&loaded).enumerate() {
            prop_assert_eq!(m.node_count(f), m2.node_count(g), "root {}", k);
            for asg in assignments() {
                let mut full = vec![false; n];
                full[..5].copy_from_slice(&asg);
                prop_assert_eq!(m.eval(f, &full), m2.eval(g, &full), "root {}", k);
            }
        }
        // Canonical under the same order: re-dump is byte-identical.
        prop_assert_eq!(dump, m2.dump_bdds_to_vec(&loaded));
    }

    #[test]
    fn dump_load_into_existing_manager_matches(form in arb_form(), seed in any::<u64>()) {
        // Dump from a manager in a shuffled order, load into a manager in
        // the DEFAULT order: semantics must survive the order translation.
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = build(&mut m, &vars, &form);
        let target: Vec<VarId> = shuffled(5, seed).into_iter().map(|v| vars[v]).collect();
        m.reorder_to(&target, &[f]);
        let dump = m.dump_bdds_to_vec(&[f]);

        let mut m2 = Manager::new();
        let vars2 = m2.new_vars(5);
        let g_other = build(&mut m2, &vars2, &form); // pre-existing content
        let loaded = m2.load_bdds_into(&mut &dump[..]).unwrap();
        prop_assert_eq!(loaded.len(), 1);
        for asg in assignments() {
            prop_assert_eq!(m2.eval(loaded[0], &asg), eval(&form, &asg));
        }
        // Same function, same manager ⇒ same hash-consed handle.
        prop_assert_eq!(loaded[0], g_other);
    }

    #[test]
    fn corrupted_dumps_never_panic(form in arb_form(), pos_seed in any::<u64>()) {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = build(&mut m, &vars, &form);
        let dump = m.dump_bdds_to_vec(&[f]);
        let pos = (pos_seed % dump.len() as u64) as usize;
        let mut corrupt = dump.clone();
        corrupt[pos] ^= 0x01;
        // Typed error, never a panic; single-byte flips always fail CRC.
        prop_assert!(Manager::load_bdds(&mut &corrupt[..]).is_err());
        for cut in 0..dump.len() {
            prop_assert!(Manager::load_bdds(&mut &dump[..cut]).is_err());
        }
    }
}
