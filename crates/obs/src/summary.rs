//! Trace-file validation and summarization.
//!
//! Turns an NDJSON trace (see [`crate::trace`] for the record schema)
//! into the paper's Table-1 columns: per-rank frontier sizes, per-phase
//! wall times, and the end-of-run synthesis statistics. The same parser
//! backs the `stsyn trace-summary` subcommand, the CI `trace-smoke` job
//! (which fails on any malformed record) and the trace test-suite.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::io::BufRead;
use std::path::Path;

/// A malformed trace record (or unreadable file), with its 1-based line.
#[derive(Debug, Clone)]
pub struct TraceError {
    /// 1-based line number of the offending record (0 for file-level errors).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace error: {}", self.message)
        } else {
            write!(f, "trace error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TraceError {}

fn bad(line: usize, message: impl Into<String>) -> TraceError {
    TraceError { line, message: message.into() }
}

const KINDS: [&str; 4] = ["span_open", "span_close", "event", "counter"];
const LEVELS: [&str; 3] = ["warn", "info", "debug"];

/// A leniently parsed trace: the records this version of the schema
/// understands, plus a count of well-formed records it skipped because a
/// newer writer used a `kind` or `level` this reader does not know.
#[derive(Debug, Clone, Default)]
pub struct LenientTrace {
    /// Validated records of known kinds, in file order.
    pub records: Vec<Json>,
    /// Records skipped for carrying an unknown `kind` or `level`.
    pub skipped_unknown: usize,
}

/// Parse and schema-validate every line of an NDJSON trace. Each record
/// must be a JSON object with a `ts_us` timestamp, a known `kind` and
/// `level`, a non-empty `name`, and the kind-specific fields; span opens
/// and closes must pair up (`parent` links must point at a span that is
/// open at that moment). Returns the records in file order.
///
/// Forward compatibility: a structurally valid record whose `kind` or
/// `level` this reader does not recognise is **skipped**, not rejected —
/// a trace from a newer writer still summarizes (see
/// [`parse_trace_lenient`] for the skip count). Malformed JSON and
/// violations of the known schema remain hard errors.
pub fn parse_trace<R: BufRead>(reader: R) -> Result<Vec<Json>, TraceError> {
    Ok(parse_trace_lenient(reader)?.records)
}

/// [`parse_trace`], also reporting how many well-formed records were
/// skipped for an unknown `kind`/`level` (future schema versions).
pub fn parse_trace_lenient<R: BufRead>(reader: R) -> Result<LenientTrace, TraceError> {
    let mut out = LenientTrace::default();
    // span id → (name, still open)
    let mut spans: BTreeMap<u64, (String, bool)> = BTreeMap::new();
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| bad(lineno, format!("unreadable line: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let rec = Json::parse(&line).map_err(|e| bad(lineno, format!("not valid JSON: {e}")))?;
        if !matches!(rec, Json::Obj(_)) {
            return Err(bad(lineno, "record is not a JSON object"));
        }
        rec.get("ts_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(lineno, "missing or non-integer `ts_us`"))?;
        let kind = rec
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(lineno, "missing `kind`"))?
            .to_string();
        let level = rec
            .get("level")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(lineno, "missing `level`"))?;
        if !KINDS.contains(&kind.as_str()) || !LEVELS.contains(&level) {
            // A newer writer's record: skip it wholesale (its fields may
            // follow a schema we cannot validate) but keep count.
            out.skipped_unknown += 1;
            continue;
        }
        let name = rec
            .get("name")
            .and_then(Json::as_str)
            .filter(|n| !n.is_empty())
            .ok_or_else(|| bad(lineno, "missing or empty `name`"))?
            .to_string();
        match kind.as_str() {
            "span_open" => {
                let id = rec
                    .get("span")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(lineno, "span_open without a `span` id"))?;
                if spans.contains_key(&id) {
                    return Err(bad(lineno, format!("span id {id} opened twice")));
                }
                if let Some(p) = rec.get("parent") {
                    let p = p.as_u64().ok_or_else(|| bad(lineno, "non-integer `parent`"))?;
                    if !matches!(spans.get(&p), Some((_, true))) {
                        return Err(bad(lineno, format!("parent span {p} is not open")));
                    }
                }
                spans.insert(id, (name, true));
            }
            "span_close" => {
                let id = rec
                    .get("span")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(lineno, "span_close without a `span` id"))?;
                rec.get("dur_us")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(lineno, "span_close without `dur_us`"))?;
                match spans.get_mut(&id) {
                    Some((open_name, open)) if *open => {
                        if *open_name != name {
                            return Err(bad(
                                lineno,
                                format!("span {id} opened as `{open_name}`, closed as `{name}`"),
                            ));
                        }
                        *open = false;
                    }
                    Some(_) => return Err(bad(lineno, format!("span {id} closed twice"))),
                    None => return Err(bad(lineno, format!("span {id} closed but never opened"))),
                }
            }
            "counter" => {
                rec.get("value")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(lineno, "counter without an integer `value`"))?;
            }
            _ => {}
        }
        out.records.push(rec);
    }
    Ok(out)
}

/// How many spans a trace leaves open (0 for a run that finished).
pub fn open_spans(records: &[Json]) -> usize {
    let mut open: BTreeMap<u64, ()> = BTreeMap::new();
    for rec in records {
        let (Some(kind), Some(id)) =
            (rec.get("kind").and_then(Json::as_str), rec.get("span").and_then(Json::as_u64))
        else {
            continue;
        };
        match kind {
            "span_open" => {
                open.insert(id, ());
            }
            "span_close" => {
                open.remove(&id);
            }
            _ => {}
        }
    }
    open.len()
}

/// The Table-1 view of one trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Total validated records.
    pub records: usize,
    /// Number of spans opened.
    pub spans: usize,
    /// Per-rank frontier sizes from `rank.layer` events: `(rank, nodes)`.
    pub rank_nodes: Vec<(u64, u64)>,
    /// Aggregate wall seconds per span name (from `span_close.dur_us`).
    pub phase_secs: BTreeMap<String, f64>,
    /// Numeric fields of the last `synthesis.stats` event — the
    /// authoritative end-of-run figures (identical to what the CLI's
    /// statistics block prints).
    pub stats: BTreeMap<String, f64>,
    /// Last sample of each named counter.
    pub counters: BTreeMap<String, u64>,
    /// `warn`-level event names and messages.
    pub warnings: Vec<String>,
    /// Well-formed records skipped for an unknown `kind`/`level` — a
    /// newer trace-schema version (see [`parse_trace_lenient`]).
    pub skipped_unknown: usize,
}

impl TraceSummary {
    /// A stat field from the `synthesis.stats` event, if present.
    pub fn stat(&self, name: &str) -> Option<f64> {
        self.stats.get(name).copied()
    }

    /// Render the summary as the paper's Table-1 columns.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace summary: {} records, {} spans", self.records, self.spans);
        let stat = |n: &str| self.stat(n).unwrap_or(0.0);
        if !self.stats.is_empty() {
            let _ = writeln!(out, "\nTable-1 columns:");
            let _ = writeln!(out, "  ranks (M)             : {}", stat("max_rank") as u64);
            let _ = writeln!(out, "  candidates considered : {}", stat("candidates") as u64);
            let _ = writeln!(out, "  groups added          : {}", stat("groups_added") as u64);
            let _ = writeln!(out, "  finished in pass      : {}", stat("finished_in_pass") as u64);
            let _ = writeln!(out, "  ranking time          : {:.3}s", stat("ranking_secs"));
            let _ = writeln!(
                out,
                "  SCC detection time    : {:.3}s ({} calls, {} SCCs)",
                stat("scc_secs"),
                stat("scc_calls") as u64,
                stat("sccs_found") as u64
            );
            let _ = writeln!(out, "  total time            : {:.3}s", stat("total_secs"));
            let _ = writeln!(
                out,
                "  program size          : {} BDD nodes",
                stat("program_nodes") as u64
            );
            let _ =
                writeln!(out, "  avg SCC size          : {:.1} BDD nodes", stat("avg_scc_nodes"));
            let _ = writeln!(out, "  peak live nodes       : {}", stat("peak_live_nodes") as u64);
            let _ = writeln!(out, "  BDD ticks             : {}", stat("bdd_ticks") as u64);
            if let (Some(lookups), Some(hits)) =
                (self.stat("cache_lookups"), self.stat("cache_hits"))
            {
                let rate = if lookups > 0.0 { 100.0 * hits / lookups } else { 0.0 };
                let _ = writeln!(
                    out,
                    "  op-cache hit rate     : {rate:.1}% ({} / {})",
                    hits as u64, lookups as u64
                );
            }
        }
        if !self.rank_nodes.is_empty() {
            let _ = writeln!(out, "\nper-rank frontier (rank: BDD nodes):");
            for (rank, nodes) in &self.rank_nodes {
                let _ = writeln!(out, "  {rank:>4}: {nodes}");
            }
        }
        if !self.phase_secs.is_empty() {
            let _ = writeln!(out, "\nper-phase wall time (from spans):");
            for (name, secs) in &self.phase_secs {
                let _ = writeln!(out, "  {name:<22} {secs:.3}s");
            }
        }
        if !self.warnings.is_empty() {
            let _ = writeln!(out, "\nwarnings:");
            for w in &self.warnings {
                let _ = writeln!(out, "  {w}");
            }
        }
        if self.skipped_unknown > 0 {
            let _ = writeln!(
                out,
                "\nwarning: skipped {} record(s) with an unrecognized kind/level \
                 (trace written by a newer stsyn?)",
                self.skipped_unknown
            );
        }
        out
    }
}

/// Summarize validated records (see [`parse_trace`]).
pub fn summarize(records: &[Json]) -> TraceSummary {
    let mut s = TraceSummary { records: records.len(), ..TraceSummary::default() };
    for rec in records {
        let kind = rec.get("kind").and_then(Json::as_str).unwrap_or("");
        let name = rec.get("name").and_then(Json::as_str).unwrap_or("");
        match kind {
            "span_open" => s.spans += 1,
            "span_close" => {
                if let Some(dur) = rec.get("dur_us").and_then(Json::as_u64) {
                    *s.phase_secs.entry(name.to_string()).or_insert(0.0) += dur as f64 / 1e6;
                }
            }
            "counter" => {
                if let Some(v) = rec.get("value").and_then(Json::as_u64) {
                    s.counters.insert(name.to_string(), v);
                }
            }
            "event" => {
                let level = rec.get("level").and_then(Json::as_str).unwrap_or("");
                if level == "warn" {
                    let msg = rec
                        .get("message")
                        .and_then(Json::as_str)
                        .map(|m| format!("{name}: {m}"))
                        .unwrap_or_else(|| name.to_string());
                    s.warnings.push(msg);
                }
                match name {
                    "rank.layer" => {
                        if let (Some(rank), Some(nodes)) = (
                            rec.get("rank").and_then(Json::as_u64),
                            rec.get("nodes").and_then(Json::as_u64),
                        ) {
                            s.rank_nodes.push((rank, nodes));
                        }
                    }
                    "synthesis.stats" => {
                        if let Json::Obj(pairs) = rec {
                            s.stats = pairs
                                .iter()
                                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                                .collect();
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    s
}

/// Parse, validate and summarize a trace file. Records written by a
/// newer schema version are skipped and surfaced via
/// [`TraceSummary::skipped_unknown`] rather than failing the parse.
pub fn summarize_file(path: &Path) -> Result<TraceSummary, TraceError> {
    let file = std::fs::File::open(path)
        .map_err(|e| bad(0, format!("cannot open {}: {e}", path.display())))?;
    let parsed = parse_trace_lenient(std::io::BufReader::new(file))?;
    let mut summary = summarize(&parsed.records);
    summary.skipped_unknown = parsed.skipped_unknown;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceLevel, Tracer};

    fn trace_lines() -> Vec<String> {
        let (t, sink) = Tracer::memory(TraceLevel::Debug);
        {
            let _run = t.span("phase.ranking");
            t.debug("rank.layer", &[("rank", Json::from(1u64)), ("nodes", Json::from(10u64))]);
            t.debug("rank.layer", &[("rank", Json::from(2u64)), ("nodes", Json::from(25u64))]);
            t.counter("bdd.ticks", 500);
        }
        t.info(
            "synthesis.stats",
            &[
                ("max_rank", Json::from(2u64)),
                ("ranking_secs", Json::Num(0.125)),
                ("total_secs", Json::Num(0.5)),
            ],
        );
        sink.lines()
    }

    #[test]
    fn parses_and_summarizes_a_valid_trace() {
        let text = trace_lines().join("\n");
        let recs = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(open_spans(&recs), 0);
        let s = summarize(&recs);
        assert_eq!(s.rank_nodes, vec![(1, 10), (2, 25)]);
        assert_eq!(s.counters.get("bdd.ticks"), Some(&500));
        assert_eq!(s.stat("ranking_secs"), Some(0.125));
        assert_eq!(s.stat("max_rank"), Some(2.0));
        let table = s.render_table();
        assert!(table.contains("ranking time          : 0.125s"));
        assert!(table.contains("   1: 10"));
        assert!(table.contains("phase.ranking"));
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(parse_trace("not json".as_bytes()).is_err());
        assert!(parse_trace("{\"kind\":\"event\"}".as_bytes()).is_err());
        // Close without open.
        assert!(parse_trace(
            "{\"ts_us\":1,\"kind\":\"span_close\",\"level\":\"info\",\"name\":\"x\",\"span\":9,\"dur_us\":1}"
                .as_bytes()
        )
        .is_err());
        // Name mismatch between open and close.
        let bad_pair = "{\"ts_us\":1,\"kind\":\"span_open\",\"level\":\"info\",\"name\":\"a\",\"span\":1}\n\
             {\"ts_us\":2,\"kind\":\"span_close\",\"level\":\"info\",\"name\":\"b\",\"span\":1,\"dur_us\":1}";
        assert!(parse_trace(bad_pair.as_bytes()).is_err());
    }

    #[test]
    fn future_versioned_trace_is_skipped_not_rejected() {
        // A trace from a hypothetical newer stsyn: two record kinds and a
        // level this reader has never heard of, interleaved with records
        // it fully understands.
        let mut lines = trace_lines();
        lines.insert(
            1,
            "{\"ts_us\":5,\"kind\":\"stream_attach\",\"level\":\"info\",\"name\":\"watch\",\"v\":2}"
                .to_string(),
        );
        lines.push(
            "{\"ts_us\":900,\"kind\":\"event\",\"level\":\"trace\",\"name\":\"rank.micro\"}"
                .to_string(),
        );
        lines.push(
            "{\"ts_us\":901,\"kind\":\"histogram\",\"level\":\"info\",\"name\":\"lat\",\"b\":[1,2]}"
                .to_string(),
        );
        let text = lines.join("\n");
        let parsed = parse_trace_lenient(text.as_bytes()).unwrap();
        assert_eq!(parsed.skipped_unknown, 3);
        // The known records still validate and summarize as before.
        let s = summarize(&parsed.records);
        assert_eq!(s.rank_nodes, vec![(1, 10), (2, 25)]);
        // `parse_trace` keeps its old shape for existing callers.
        let recs = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), parsed.records.len());
        // And the rendered table surfaces the skip count.
        let mut s2 = s.clone();
        s2.skipped_unknown = parsed.skipped_unknown;
        assert!(s2.render_table().contains("skipped 3 record(s)"));
        // Records missing `kind`/`level` entirely are still hard errors.
        assert!(parse_trace("{\"ts_us\":1,\"name\":\"x\",\"level\":\"info\"}".as_bytes()).is_err());
    }

    #[test]
    fn counts_open_spans() {
        let only_open =
            "{\"ts_us\":1,\"kind\":\"span_open\",\"level\":\"info\",\"name\":\"a\",\"span\":1}";
        let recs = parse_trace(only_open.as_bytes()).unwrap();
        assert_eq!(open_spans(&recs), 1);
    }

    #[test]
    fn warn_events_are_collected() {
        let line = "{\"ts_us\":1,\"kind\":\"event\",\"level\":\"warn\",\"name\":\"checkpoint.warning\",\"message\":\"torn tail\"}";
        let recs = parse_trace(line.as_bytes()).unwrap();
        let s = summarize(&recs);
        assert_eq!(s.warnings, vec!["checkpoint.warning: torn tail".to_string()]);
    }
}
