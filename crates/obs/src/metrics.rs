//! A Prometheus-style text exposition builder.
//!
//! The pipeline's metric sources are plain integers and atomics owned by
//! their layers (serve's `Counters`, the BDD `ManagerStats`, the
//! synthesis stats), so instead of a global registry this module offers a
//! small builder that renders those values in the Prometheus text format
//! (`# HELP` / `# TYPE` headers, one sample per line). The serve daemon's
//! `metrics` verb and the CLI `--metrics` flag both render through it.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (microseconds, inclusive) of the log-spaced latency
/// buckets shared by every `stsyn_*_seconds` histogram: powers of four
/// from 1 ms to ~262 s, plus an implicit `+Inf` overflow bucket. Using
/// one fixed layout everywhere is what lets the router sum shard buckets
/// element-wise into the `stsyn_fleet_*` series.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 10] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
];

/// Number of bucket counters, including the `+Inf` overflow slot.
pub const LATENCY_BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// A lock-free log-bucketed latency histogram (fixed
/// [`LATENCY_BUCKET_BOUNDS_US`] layout). Writers call
/// [`LatencyHistogram::observe_us`]; readers take a consistent-enough
/// [`HistogramSnapshot`] for rendering or cross-shard aggregation.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one latency sample, in microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the per-bucket counts, sum and count.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A copied histogram state — what `stats` exposes on the wire and what
/// the router sums across shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; `buckets[LATENCY_BUCKETS-1]`
    /// is the `+Inf` overflow slot.
    pub buckets: Vec<u64>,
    /// Sum of all observed samples, microseconds.
    pub sum_us: u64,
    /// Number of observed samples.
    pub count: u64,
}

impl HistogramSnapshot {
    /// An all-zero snapshot with the standard bucket layout.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot { buckets: vec![0; LATENCY_BUCKETS], sum_us: 0, count: 0 }
    }

    /// Wire form, as exposed in the serve daemon's `stats` response:
    /// `{"buckets":[..],"sum_us":N,"count":N}`.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj(vec![
            ("buckets", Json::Arr(self.buckets.iter().map(|&b| Json::from(b)).collect())),
            ("sum_us", self.sum_us.into()),
            ("count", self.count.into()),
        ])
    }

    /// Parse the wire form back (used by the router's fleet aggregation).
    pub fn from_json(v: &crate::json::Json) -> Option<HistogramSnapshot> {
        use crate::json::Json;
        let buckets = match v.get("buckets")? {
            Json::Arr(items) => items.iter().map(Json::as_u64).collect::<Option<Vec<u64>>>()?,
            _ => return None,
        };
        Some(HistogramSnapshot {
            buckets,
            sum_us: v.get("sum_us").and_then(Json::as_u64)?,
            count: v.get("count").and_then(Json::as_u64)?,
        })
    }

    /// Element-wise accumulate `other` into `self` (fleet aggregation).
    /// Snapshots with a foreign bucket layout are merged by sum/count
    /// only, with their samples folded into the overflow bucket.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() != LATENCY_BUCKETS {
            *self = HistogramSnapshot::empty();
        }
        if other.buckets.len() == LATENCY_BUCKETS {
            for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
                *mine += theirs;
            }
        } else {
            self.buckets[LATENCY_BUCKETS - 1] += other.count;
        }
        self.sum_us += other.sum_us;
        self.count += other.count;
    }
}

/// Render a bucket bound as its Prometheus `le` label value, in seconds.
fn le_label(bound_us: u64) -> String {
    let secs = bound_us as f64 / 1e6;
    // Trim trailing zeros so 1.024000 renders as 1.024 and 0.001000 as 0.001.
    let mut s = format!("{secs:.6}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.push('0');
    }
    s
}

/// Accumulates metric samples and renders the Prometheus text format.
#[derive(Debug, Default)]
pub struct MetricsText {
    buf: String,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        && !name.as_bytes()[0].is_ascii_digit()
}

impl MetricsText {
    /// An empty exposition.
    pub fn new() -> MetricsText {
        MetricsText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// Add a monotonically-increasing counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.header(name, help, "counter");
        let _ = writeln!(self.buf, "{name} {value}");
        self
    }

    /// Add a point-in-time gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.header(name, help, "gauge");
        let _ = writeln!(self.buf, "{name} {value}");
        self
    }

    /// Add a histogram in the standard Prometheus expansion: cumulative
    /// `{name}_bucket{{le="..."}}` samples (seconds), `{name}_sum`
    /// (seconds) and `{name}_count`. `name` should therefore end in
    /// `_seconds`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) -> &mut Self {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (i, bound) in LATENCY_BUCKET_BOUNDS_US.iter().enumerate() {
            cumulative += snap.buckets.get(i).copied().unwrap_or(0);
            let le = le_label(*bound);
            let _ = writeln!(self.buf, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(self.buf, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(self.buf, "{name}_sum {}", snap.sum_us as f64 / 1e6);
        let _ = writeln!(self.buf, "{name}_count {}", snap.count);
        self
    }

    /// The rendered exposition text.
    pub fn render(&self) -> &str {
        &self.buf
    }

    /// Consume the builder, returning the exposition text.
    pub fn into_string(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_prometheus_text() {
        let mut m = MetricsText::new();
        m.counter("stsyn_jobs_completed_total", "Jobs finished successfully.", 3)
            .gauge("stsyn_queue_depth", "Jobs waiting in the queue.", 2.0)
            .gauge("stsyn_worker_utilization", "Busy fraction of the pool.", 0.5);
        let text = m.render();
        assert!(text.contains("# TYPE stsyn_jobs_completed_total counter"));
        assert!(text.contains("stsyn_jobs_completed_total 3"));
        assert!(text.contains("# HELP stsyn_queue_depth Jobs waiting in the queue."));
        assert!(text.contains("stsyn_queue_depth 2"));
        assert!(text.contains("stsyn_worker_utilization 0.5"));
        // Every non-comment line is `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            assert!(valid_name(parts.next().unwrap()));
            assert!(parts.next().unwrap().parse::<f64>().is_ok());
            assert!(parts.next().is_none());
        }
    }

    #[test]
    fn histogram_buckets_are_log_spaced_and_cumulative() {
        let h = LatencyHistogram::new();
        h.observe_us(500); // ≤ 1ms
        h.observe_us(500); // ≤ 1ms
        h.observe_us(3_000); // ≤ 4ms
        h.observe_us(100_000); // ≤ 256ms
        h.observe_us(10_000_000_000); // > 262s → +Inf
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[LATENCY_BUCKETS - 1], 1);
        let mut m = MetricsText::new();
        m.histogram("stsyn_queue_wait_seconds", "Queue wait distribution.", &snap);
        let text = m.render();
        assert!(text.contains("# TYPE stsyn_queue_wait_seconds histogram"));
        assert!(text.contains("stsyn_queue_wait_seconds_bucket{le=\"0.001\"} 2"));
        assert!(text.contains("stsyn_queue_wait_seconds_bucket{le=\"0.004\"} 3"));
        assert!(text.contains("stsyn_queue_wait_seconds_bucket{le=\"0.256\"} 4"));
        assert!(text.contains("stsyn_queue_wait_seconds_bucket{le=\"262.144\"} 4"));
        assert!(text.contains("stsyn_queue_wait_seconds_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("stsyn_queue_wait_seconds_count 5"));
        // `le` buckets are cumulative and monotone.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn snapshot_merge_is_element_wise() {
        let a = {
            let h = LatencyHistogram::new();
            h.observe_us(500);
            h.observe_us(2_000);
            h.snapshot()
        };
        let b = {
            let h = LatencyHistogram::new();
            h.observe_us(700);
            h.snapshot()
        };
        let mut fleet = HistogramSnapshot::empty();
        fleet.merge(&a);
        fleet.merge(&b);
        assert_eq!(fleet.count, 3);
        assert_eq!(fleet.buckets[0], 2);
        assert_eq!(fleet.buckets[1], 1);
        assert_eq!(fleet.sum_us, 3_200);
        // Foreign layout degrades to overflow, never panics.
        let foreign = HistogramSnapshot { buckets: vec![9; 3], sum_us: 10, count: 9 };
        fleet.merge(&foreign);
        assert_eq!(fleet.count, 12);
        assert_eq!(fleet.buckets[LATENCY_BUCKETS - 1], 9);
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("stsyn_bdd_ticks_total"));
        assert!(!valid_name("9starts_with_digit"));
        assert!(!valid_name("has space"));
        assert!(!valid_name(""));
    }
}
