//! A Prometheus-style text exposition builder.
//!
//! The pipeline's metric sources are plain integers and atomics owned by
//! their layers (serve's `Counters`, the BDD `ManagerStats`, the
//! synthesis stats), so instead of a global registry this module offers a
//! small builder that renders those values in the Prometheus text format
//! (`# HELP` / `# TYPE` headers, one sample per line). The serve daemon's
//! `metrics` verb and the CLI `--metrics` flag both render through it.

use std::fmt::Write as _;

/// Accumulates metric samples and renders the Prometheus text format.
#[derive(Debug, Default)]
pub struct MetricsText {
    buf: String,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        && !name.as_bytes()[0].is_ascii_digit()
}

impl MetricsText {
    /// An empty exposition.
    pub fn new() -> MetricsText {
        MetricsText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// Add a monotonically-increasing counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.header(name, help, "counter");
        let _ = writeln!(self.buf, "{name} {value}");
        self
    }

    /// Add a point-in-time gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.header(name, help, "gauge");
        let _ = writeln!(self.buf, "{name} {value}");
        self
    }

    /// The rendered exposition text.
    pub fn render(&self) -> &str {
        &self.buf
    }

    /// Consume the builder, returning the exposition text.
    pub fn into_string(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_prometheus_text() {
        let mut m = MetricsText::new();
        m.counter("stsyn_jobs_completed_total", "Jobs finished successfully.", 3)
            .gauge("stsyn_queue_depth", "Jobs waiting in the queue.", 2.0)
            .gauge("stsyn_worker_utilization", "Busy fraction of the pool.", 0.5);
        let text = m.render();
        assert!(text.contains("# TYPE stsyn_jobs_completed_total counter"));
        assert!(text.contains("stsyn_jobs_completed_total 3"));
        assert!(text.contains("# HELP stsyn_queue_depth Jobs waiting in the queue."));
        assert!(text.contains("stsyn_queue_depth 2"));
        assert!(text.contains("stsyn_worker_utilization 0.5"));
        // Every non-comment line is `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            assert!(valid_name(parts.next().unwrap()));
            assert!(parts.next().unwrap().parse::<f64>().is_ok());
            assert!(parts.next().is_none());
        }
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("stsyn_bdd_ticks_total"));
        assert!(!valid_name("9starts_with_digit"));
        assert!(!valid_name("has space"));
        assert!(!valid_name(""));
    }
}
