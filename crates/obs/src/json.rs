//! A minimal, dependency-free JSON layer shared by the trace sink and the
//! wire protocol.
//!
//! `stsyn-serve` frames requests and responses as newline-delimited JSON
//! over TCP, and the [`crate::trace`] sink emits newline-delimited JSON
//! trace records. The workspace builds fully offline, so instead of
//! `serde` this module hand-rolls the small subset both need: a value
//! tree, a recursion-bounded parser, and a canonical serializer
//! (object keys keep insertion order, so a given value always serializes
//! to the same bytes — which the persistence layer relies on when
//! diffing stored results).

use std::fmt;

/// Maximum parser recursion depth; deeper payloads are rejected rather
/// than risking a stack overflow on adversarial input.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The payload as a signed integer, if it is one exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to the compact, canonical form (`to_string()` comes from
/// this impl).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; never produced in practice
    } else if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a `\uXXXX` low half.
                                self.eat("\\u").map_err(|_| self.err("lone high surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // char boundary logic is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap_or('\u{fffd}');
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).unwrap()
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.5),
            Json::Num(1e18),
            Json::Str("".into()),
            Json::Str("hello \"world\"\n\t\\ ∞ €".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::obj(vec![
            ("id", 42u64.into()),
            ("name", "token_ring".into()),
            ("args", Json::Arr(vec![1u64.into(), 2u64.into()])),
            ("inner", Json::obj(vec![("ok", true.into()), ("x", Json::Null)])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn dsl_payload_with_newlines_roundtrips() {
        let dsl = "protocol P {\n  var x : 0..2;\n  invariant x == 0;\n}";
        let v = Json::obj(vec![("dsl", dsl.into())]);
        let back = roundtrip(&v);
        assert_eq!(back.get("dsl").unwrap().as_str().unwrap(), dsl);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""a\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aAé😀");
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\":}",
            "nul",
            "truex",
            "1e999",
            "[1]]",
            "{\"a\" 1}",
            "\"\\q\"",
            "\"\\ud800x\"",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn integer_accessors_are_exact() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(-7.0).as_u64(), None);
        assert_eq!(Json::Num(-7.0).as_i64(), Some(-7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
    }
}
