//! A lightweight span/event/counter tracer with an NDJSON sink.
//!
//! [`Tracer`] is a cheap cloneable handle — internally an
//! `Option<Arc<..>>` — so a **disabled** tracer costs one pointer-sized
//! `Option` check per hook, the same discipline as the budget `tick()`
//! fast path. Every layer of the synthesis pipeline (BDD manager,
//! symbolic fixpoints, heuristic passes, the serve daemon) holds a clone
//! and fires hooks unconditionally; when no sink is installed the hooks
//! return immediately and the synthesis path is byte-identical to an
//! uninstrumented run (asserted by the trace test-suite and guarded by
//! the `trace_overhead` bench).
//!
//! ## Record schema
//!
//! One JSON object per line, monotonic-clock microsecond timestamps
//! (`ts_us`, anchored at tracer creation):
//!
//! ```text
//! {"ts_us":N,"kind":"span_open","level":L,"name":S,"span":I,"parent":I?}
//! {"ts_us":N,"kind":"span_close","level":L,"name":S,"span":I,"dur_us":N}
//! {"ts_us":N,"kind":"event","level":L,"name":S,"span":I?, ...fields}
//! {"ts_us":N,"kind":"counter","level":L,"name":S,"span":I?,"value":N}
//! ```
//!
//! Span ids are process-unique (`AtomicU64`); the *current* span is
//! tracked per thread, so `parent` links reflect each worker thread's
//! own nesting and events are attributed to the innermost open span of
//! the emitting thread.
//!
//! ## Event families
//!
//! Names are dotted `layer.what` strings owned by the emitting layer.
//! The families currently in use:
//!
//! - `bdd.*`, `synth.*` — core synthesis pipeline spans and counters.
//! - `serve.*` — daemon lifecycle (worker supervision, quarantine,
//!   retention pruning).
//! - `store.*` — artifact-store traffic: `store.hit` /
//!   `store.partial_hit` / `store.miss` / `store.evict` counters, plus
//!   `store.corrupt`, `store.seed_rejected` and `store.publish_failed`
//!   warnings. The serve daemon mirrors the counters as
//!   `stsyn_store_*` Prometheus series via its `metrics` verb.

use crate::json::Json;
use crate::progress::{is_progress_event, ProgressBus};
use std::cell::RefCell;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Trace verbosity. Records at a level *above* the tracer's are dropped
/// before any encoding work happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Only warnings (structured diagnostics that used to be `eprintln!`s).
    Warn = 1,
    /// Spans, phase events, GC/reorder events (the default).
    Info = 2,
    /// Everything, including per-rank and per-step detail.
    Debug = 3,
}

impl TraceLevel {
    fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Warn => "warn",
            TraceLevel::Info => "info",
            TraceLevel::Debug => "debug",
        }
    }

    /// Parse a CLI-facing level name.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "warn" => Some(TraceLevel::Warn),
            "info" => Some(TraceLevel::Info),
            "debug" => Some(TraceLevel::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where encoded NDJSON lines go. Implementations must be cheap to call
/// concurrently — the tracer does no buffering of its own.
pub trait TraceSink: Send + Sync {
    /// Emit one complete NDJSON line (no trailing newline).
    fn write_line(&self, line: &str);
}

/// Sink appending to a file through a mutex-guarded buffered writer,
/// flushed per line so a crashed or killed process leaves a readable
/// trace prefix.
struct FileSink {
    file: Mutex<BufWriter<File>>,
}

impl TraceSink for FileSink {
    fn write_line(&self, line: &str) {
        if let Ok(mut f) = self.file.lock() {
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
    }
}

/// Sink writing to stderr — the serve daemon's default, so structured
/// warnings land where the old `eprintln!` diagnostics did.
struct StderrSink;

impl TraceSink for StderrSink {
    fn write_line(&self, line: &str) {
        eprintln!("{line}");
    }
}

/// In-memory sink for the test-suite: collects every emitted line.
#[derive(Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// Snapshot of every line emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().map(|l| l.clone()).unwrap_or_default()
    }
}

impl TraceSink for MemorySink {
    fn write_line(&self, line: &str) {
        if let Ok(mut l) = self.lines.lock() {
            l.push(line.to_string());
        }
    }
}

/// Sink that discards every line — backs a tracer that exists only to
/// tee progress events onto a [`ProgressBus`].
struct NullSink;

impl TraceSink for NullSink {
    fn write_line(&self, _line: &str) {}
}

struct Shared {
    sink: Arc<dyn TraceSink>,
    level: TraceLevel,
    epoch: Instant,
    /// Shared across derived tracers (see [`Tracer::with_progress`]) so
    /// span ids stay process-unique even when several handles write to
    /// the same sink.
    next_span: Arc<AtomicU64>,
    /// Optional progress tee: records whose name passes
    /// [`is_progress_event`] are also published here, regardless of the
    /// sink's level threshold.
    bus: Option<ProgressBus>,
}

/// Where one record goes: the sink (level-gated) and/or the progress
/// bus (watched-gated, progress-named records only).
#[derive(Clone, Copy)]
struct Routes {
    sink: bool,
    bus: bool,
}

impl Routes {
    #[inline]
    fn none(self) -> bool {
        !self.sink && !self.bus
    }
}

thread_local! {
    /// Innermost-open-span stack of the current thread (ids are
    /// process-unique, so one stack serves every tracer).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A cloneable tracing handle; see the module docs for the record schema.
/// The default handle is **disabled**: every hook is a single `Option`
/// check and no record is ever built.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Shared>>);

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("Tracer(disabled)"),
            Some(s) => write!(f, "Tracer(level={})", s.level),
        }
    }
}

impl Tracer {
    /// The no-op tracer (same as `Tracer::default()`).
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// A tracer over an arbitrary sink.
    pub fn with_sink(sink: Box<dyn TraceSink>, level: TraceLevel) -> Tracer {
        Tracer(Some(Arc::new(Shared {
            sink: Arc::from(sink),
            level,
            epoch: Instant::now(),
            next_span: Arc::new(AtomicU64::new(1)),
            bus: None,
        })))
    }

    /// Derive a tracer that additionally tees progress-relevant records
    /// (see [`is_progress_event`]) onto `bus`. The derived handle shares
    /// the parent's sink, level, epoch and span-id allocator, so traces
    /// written through either handle stay consistent; on a **disabled**
    /// parent the derived tracer feeds only the bus. The tee is gated on
    /// [`ProgressBus::watched`]: while a subscriber is attached,
    /// [`Tracer::level_enabled`] reports `true` at every level (the bus
    /// must see `rank.layer` / `heuristic.step` detail even when the
    /// sink is quieter), and while nobody watches the tee is inert — an
    /// unwatched job pays nothing for its instrumentation.
    pub fn with_progress(&self, bus: ProgressBus) -> Tracer {
        let shared = match &self.0 {
            Some(s) => Shared {
                sink: Arc::clone(&s.sink),
                level: s.level,
                epoch: s.epoch,
                next_span: Arc::clone(&s.next_span),
                bus: Some(bus),
            },
            None => Shared {
                sink: Arc::new(NullSink),
                level: TraceLevel::Warn,
                epoch: Instant::now(),
                next_span: Arc::new(AtomicU64::new(1)),
                bus: Some(bus),
            },
        };
        Tracer(Some(Arc::new(shared)))
    }

    /// A tracer writing NDJSON to `path` (created or truncated).
    pub fn to_file(path: &Path, level: TraceLevel) -> std::io::Result<Tracer> {
        let file = File::create(path)?;
        Ok(Tracer::with_sink(Box::new(FileSink { file: Mutex::new(BufWriter::new(file)) }), level))
    }

    /// A tracer writing NDJSON lines to stderr.
    pub fn to_stderr(level: TraceLevel) -> Tracer {
        Tracer::with_sink(Box::new(StderrSink), level)
    }

    /// A tracer over an in-memory sink plus the handle to read it back —
    /// the test-suite entry point.
    pub fn memory(level: TraceLevel) -> (Tracer, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::default());
        let tracer = Tracer(Some(Arc::new(Shared {
            sink: Arc::new(ArcSink(Arc::clone(&sink))),
            level,
            epoch: Instant::now(),
            next_span: Arc::new(AtomicU64::new(1)),
            bus: None,
        })));
        (tracer, sink)
    }

    /// Is any sink installed?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Would a record at `level` actually be emitted? Callers use this to
    /// skip *computing* expensive fields (e.g. BDD node counts), not just
    /// emitting them. A tracer whose [`ProgressBus`] is currently
    /// watched reports `true` at every level: progress subscribers need
    /// `rank.layer` / `heuristic.step` detail even when the sink itself
    /// is quieter. With no subscriber attached the bus contributes
    /// nothing, so unwatched jobs keep the disabled-tracer fast path.
    #[inline]
    pub fn level_enabled(&self, level: TraceLevel) -> bool {
        match &self.0 {
            None => false,
            Some(s) => level <= s.level || s.bus.as_ref().is_some_and(ProgressBus::watched),
        }
    }

    /// Routing for a record named `name` at `level`.
    #[inline]
    fn routes(shared: &Shared, level: TraceLevel, name: &str) -> Routes {
        Routes {
            sink: level <= shared.level,
            bus: shared.bus.as_ref().is_some_and(ProgressBus::watched) && is_progress_event(name),
        }
    }

    fn emit(
        &self,
        shared: &Shared,
        kind: &str,
        level: TraceLevel,
        name: &str,
        fields: &[(&str, Json)],
        routes: Routes,
    ) {
        let mut pairs: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 5);
        let ts = shared.epoch.elapsed().as_micros() as u64;
        pairs.push(("ts_us".to_string(), Json::from(ts)));
        pairs.push(("kind".to_string(), Json::from(kind)));
        pairs.push(("level".to_string(), Json::from(level.as_str())));
        pairs.push(("name".to_string(), Json::from(name)));
        for (k, v) in fields {
            pairs.push(((*k).to_string(), v.clone()));
        }
        let line = Json::Obj(pairs).to_string();
        if routes.sink {
            shared.sink.write_line(&line);
        }
        if routes.bus {
            if let Some(bus) = &shared.bus {
                bus.publish_line(&line);
            }
        }
    }

    /// Open a span. Returns a guard that emits `span_close` (with
    /// `dur_us`) when dropped. Spans are `Info`-level: a `Warn`-only
    /// tracer neither emits nor stacks them.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with(name, &[])
    }

    /// [`Tracer::span`] with extra fields on the `span_open` record.
    pub fn span_with(&self, name: &'static str, fields: &[(&str, Json)]) -> Span {
        let Some(shared) = &self.0 else { return Span::inert() };
        let routes = Self::routes(shared, TraceLevel::Info, name);
        if routes.none() {
            return Span::inert();
        }
        let id = shared.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        let mut all: Vec<(&str, Json)> = Vec::with_capacity(fields.len() + 2);
        all.push(("span", Json::from(id)));
        if let Some(p) = parent {
            all.push(("parent", Json::from(p)));
        }
        all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
        self.emit(shared, "span_open", TraceLevel::Info, name, &all, routes);
        Span { tracer: self.clone(), id, name, opened: Instant::now() }
    }

    /// Emit a point event at `level` with free-form fields.
    pub fn event(&self, level: TraceLevel, name: &'static str, fields: &[(&str, Json)]) {
        let Some(shared) = &self.0 else { return };
        let routes = Self::routes(shared, level, name);
        if routes.none() {
            return;
        }
        let current = SPAN_STACK.with(|s| s.borrow().last().copied());
        let mut all: Vec<(&str, Json)> = Vec::with_capacity(fields.len() + 1);
        if let Some(span) = current {
            all.push(("span", Json::from(span)));
        }
        all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
        self.emit(shared, "event", level, name, &all, routes);
    }

    /// A `Warn`-level event — the structured replacement for raw
    /// `eprintln!` diagnostics.
    pub fn warn(&self, name: &'static str, fields: &[(&str, Json)]) {
        self.event(TraceLevel::Warn, name, fields);
    }

    /// An `Info`-level event.
    pub fn info(&self, name: &'static str, fields: &[(&str, Json)]) {
        self.event(TraceLevel::Info, name, fields);
    }

    /// A `Debug`-level event.
    pub fn debug(&self, name: &'static str, fields: &[(&str, Json)]) {
        self.event(TraceLevel::Debug, name, fields);
    }

    /// Emit a named counter sample (`Info` level).
    pub fn counter(&self, name: &'static str, value: u64) {
        let Some(shared) = &self.0 else { return };
        let routes = Self::routes(shared, TraceLevel::Info, name);
        if routes.none() {
            return;
        }
        let current = SPAN_STACK.with(|s| s.borrow().last().copied());
        let mut all: Vec<(&str, Json)> = Vec::with_capacity(2);
        if let Some(span) = current {
            all.push(("span", Json::from(span)));
        }
        all.push(("value", Json::from(value)));
        self.emit(shared, "counter", TraceLevel::Info, name, &all, routes);
    }
}

/// Adapter so the memory sink can be shared between tracer and test.
struct ArcSink(Arc<MemorySink>);

impl TraceSink for ArcSink {
    fn write_line(&self, line: &str) {
        self.0.write_line(line);
    }
}

/// An open span; emits the matching `span_close` record (with `dur_us`)
/// when dropped. The inert span (from a disabled tracer) does nothing.
pub struct Span {
    tracer: Tracer,
    id: u64,
    name: &'static str,
    opened: Instant,
}

impl Span {
    fn inert() -> Span {
        Span { tracer: Tracer::disabled(), id: 0, name: "", opened: Instant::now() }
    }

    /// Close the span now (otherwise closed on drop).
    pub fn close(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(shared) = &self.tracer.0 else { return };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&self.id) {
                s.pop();
            } else {
                // Out-of-order drop (shouldn't happen with guard scoping);
                // remove wherever it is to keep the stack sane.
                s.retain(|&x| x != self.id);
            }
        });
        let dur = self.opened.elapsed().as_micros() as u64;
        let routes = Tracer::routes(shared, TraceLevel::Info, self.name);
        self.tracer.emit(
            shared,
            "span_close",
            TraceLevel::Info,
            self.name,
            &[("span", Json::from(self.id)), ("dur_us", Json::from(dur))],
            routes,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(sink: &MemorySink) -> Vec<Json> {
        sink.lines().iter().map(|l| Json::parse(l).expect("valid NDJSON")).collect()
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_is_cheap() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert!(!t.level_enabled(TraceLevel::Warn));
        let span = t.span("x");
        t.event(TraceLevel::Info, "e", &[("k", Json::from(1u64))]);
        t.counter("c", 7);
        drop(span);
    }

    #[test]
    fn records_have_schema_fields() {
        let (t, sink) = Tracer::memory(TraceLevel::Debug);
        {
            let _s = t.span("phase");
            t.info("evt", &[("n", Json::from(3u64))]);
            t.counter("ticks", 42);
        }
        let recs = parsed(&sink);
        assert_eq!(recs.len(), 4); // open, event, counter, close
        for r in &recs {
            assert!(r.get("ts_us").and_then(Json::as_u64).is_some());
            assert!(r.get("kind").and_then(Json::as_str).is_some());
            assert!(r.get("name").and_then(Json::as_str).is_some());
        }
        assert_eq!(recs[0].get("kind").and_then(Json::as_str), Some("span_open"));
        assert_eq!(recs[1].get("span"), recs[0].get("span"));
        assert_eq!(recs[2].get("value").and_then(Json::as_u64), Some(42));
        assert_eq!(recs[3].get("kind").and_then(Json::as_str), Some("span_close"));
        assert!(recs[3].get("dur_us").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn nesting_produces_parent_links() {
        let (t, sink) = Tracer::memory(TraceLevel::Info);
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
        }
        let recs = parsed(&sink);
        let outer_id = recs[0].get("span").and_then(Json::as_u64).unwrap();
        assert_eq!(recs[1].get("parent").and_then(Json::as_u64), Some(outer_id));
        // Inner closes before outer.
        assert_eq!(recs[2].get("name").and_then(Json::as_str), Some("inner"));
        assert_eq!(recs[3].get("name").and_then(Json::as_str), Some("outer"));
    }

    #[test]
    fn level_filter_drops_below_threshold() {
        let (t, sink) = Tracer::memory(TraceLevel::Warn);
        let s = t.span("suppressed");
        t.debug("d", &[]);
        t.info("i", &[]);
        t.warn("w", &[]);
        drop(s);
        let recs = parsed(&sink);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get("name").and_then(Json::as_str), Some("w"));
        assert!(!t.level_enabled(TraceLevel::Info));
        assert!(t.level_enabled(TraceLevel::Warn));
    }

    #[test]
    fn progress_bus_tee_receives_debug_detail_past_a_quiet_sink() {
        use crate::progress::{Progress, ProgressBus};
        let (t, sink) = Tracer::memory(TraceLevel::Warn);
        let bus = ProgressBus::new(32);
        let teed = t.with_progress(bus.clone());
        // Nobody watching yet: the tee stays inert and the disabled-level
        // fast path holds.
        assert!(!teed.level_enabled(TraceLevel::Debug));
        let mut rx = bus.subscribe(None);
        // A watched bus makes every level worth computing...
        assert!(teed.level_enabled(TraceLevel::Debug));
        {
            let _p = teed.span("phase.ranking");
            teed.debug("rank.layer", &[("rank", Json::from(1u64)), ("nodes", Json::from(9u64))]);
            teed.debug("bdd.detail", &[]); // not progress-relevant: bus must skip it
        }
        // ...but the sink still honours its own threshold.
        assert!(sink.lines().is_empty());
        let mut names = Vec::new();
        while let Progress::Event { line, .. } = rx.next(std::time::Duration::from_millis(5)) {
            let rec = Json::parse(&line).unwrap();
            names.push(rec.get("name").and_then(Json::as_str).unwrap().to_string());
        }
        assert_eq!(names, vec!["phase.ranking", "rank.layer", "phase.ranking"]);
    }

    #[test]
    fn with_progress_on_a_disabled_tracer_feeds_only_the_bus() {
        use crate::progress::ProgressBus;
        let bus = ProgressBus::new(8);
        let t = Tracer::disabled().with_progress(bus.clone());
        let _rx = bus.subscribe(None);
        t.debug("rank.layer", &[("rank", Json::from(1u64))]);
        t.debug("not.progress", &[]);
        assert_eq!(bus.published(), 1);
    }

    #[test]
    fn unwatched_bus_tee_is_inert_until_a_subscriber_attaches() {
        use crate::progress::ProgressBus;
        let bus = ProgressBus::new(8);
        let t = Tracer::disabled().with_progress(bus.clone());
        t.debug("rank.layer", &[("rank", Json::from(1u64))]);
        assert_eq!(bus.published(), 0, "no subscriber: the tee must not record");
        {
            let _rx = bus.subscribe(None);
            t.debug("rank.layer", &[("rank", Json::from(2u64))]);
            assert_eq!(bus.published(), 1);
        }
        // Receiver dropped: inert again.
        t.debug("rank.layer", &[("rank", Json::from(3u64))]);
        assert_eq!(bus.published(), 1);
    }

    #[test]
    fn derived_tracer_shares_span_id_allocation() {
        use crate::progress::ProgressBus;
        let (t, sink) = Tracer::memory(TraceLevel::Info);
        let teed = t.with_progress(ProgressBus::new(8));
        {
            let _a = t.span("outer");
            let _b = teed.span("phase.inner");
        }
        let recs = parsed(&sink);
        let ids: Vec<u64> =
            recs.iter().filter_map(|r| r.get("span").and_then(Json::as_u64)).collect();
        assert_eq!(ids[0], 1);
        assert_eq!(ids[1], 2); // no id collision between parent and derived handle
    }

    #[test]
    fn trace_level_parses() {
        assert_eq!(TraceLevel::parse("warn"), Some(TraceLevel::Warn));
        assert_eq!(TraceLevel::parse("info"), Some(TraceLevel::Info));
        assert_eq!(TraceLevel::parse("debug"), Some(TraceLevel::Debug));
        assert_eq!(TraceLevel::parse("loud"), None);
    }
}
