//! `stsyn-obs` — std-only tracing and metrics for the synthesis pipeline.
//!
//! The paper's empirical story (Table 1, Figs. 7/9/10) is told through two
//! observables — BDD node counts and per-phase synthesis time — that the
//! rest of the workspace previously reported only as one-shot end-of-run
//! numbers. This crate provides the shared observability layer:
//!
//! - [`trace`] — a cheap cloneable [`Tracer`] with span/event/counter
//!   hooks and an NDJSON sink (file, stderr, or in-memory). A disabled
//!   tracer costs one `Option` check per hook.
//! - [`progress`] — [`ProgressBus`], a bounded per-job ring of progress
//!   frames the tracer tees into, backing the serve daemon's live
//!   `watch` streaming.
//! - [`metrics`] — [`MetricsText`], a Prometheus-style text exposition
//!   builder used by the serve daemon's `metrics` verb and the CLI
//!   `--metrics` flag, plus the log-bucketed [`LatencyHistogram`]
//!   behind the `stsyn_*_seconds` series.
//! - [`summary`] — validation and Table-1-style summarization of trace
//!   files, backing `stsyn trace-summary` and the CI trace-smoke job.
//! - [`json`] — the dependency-free JSON value used both for trace
//!   records and (re-exported by `stsyn-serve`) the wire protocol.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod progress;
pub mod summary;
pub mod trace;

pub use json::{Json, JsonError};
pub use metrics::{HistogramSnapshot, LatencyHistogram, MetricsText, LATENCY_BUCKETS};
pub use progress::{is_progress_event, Progress, ProgressBus, ProgressReceiver};
pub use summary::{
    open_spans, parse_trace, parse_trace_lenient, summarize, summarize_file, LenientTrace,
    TraceError, TraceSummary,
};
pub use trace::{MemorySink, Span, TraceLevel, TraceSink, Tracer};
