//! Per-job progress event bus: a bounded ring of structured frames.
//!
//! [`ProgressBus`] is the fan-out point between the synthesis pipeline
//! and live `watch` subscribers. The [`crate::trace::Tracer`] tees
//! progress-relevant records (see [`is_progress_event`]) into the bus of
//! the job it is running; the serve daemon publishes lifecycle frames
//! (`job.state`) directly. Each published frame gets a monotonically
//! increasing sequence number, so a subscriber that attaches late
//! receives a **bounded replay** — whatever the ring still retains — and
//! then tails live.
//!
//! Backpressure policy is drop-oldest-with-gap-marker: the ring never
//! grows past its capacity, a slow or absent subscriber simply loses the
//! oldest frames, and the next read reports the hole explicitly as
//! [`Progress::Gap`] before resuming.
//!
//! Cost model: frames published directly on the bus (the serve layer's
//! `job.state` lifecycle — a handful per job) are always recorded, so a
//! late subscriber can replay the job's state transitions. The *tracer
//! tee*, by contrast, consults [`ProgressBus::watched`] per record and
//! stays inert while no receiver is attached — an unwatched job pays
//! nothing for its Debug-level instrumentation (guarded under 5% by the
//! `trace_overhead` bench's no-subscriber column).

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default ring capacity (frames) — also the maximum replay window a
/// late subscriber can observe.
pub const PROGRESS_BUS_CAPACITY: usize = 256;

/// Is a trace record with this `name` worth teeing onto the progress
/// bus? The allowlist keeps the tee cheap for hot non-progress debug
/// records: phase transitions, per-rank frontier sizes, heuristic
/// steps, budget consumption, store traffic and job lifecycle.
pub fn is_progress_event(name: &str) -> bool {
    name == "job"
        || name == "rank.layer"
        || name == "synthesis.stats"
        || name.starts_with("phase.")
        || name.starts_with("heuristic.")
        || name.starts_with("budget.")
        || name.starts_with("store.")
        || name.starts_with("job.")
        || name.starts_with("serve.job")
}

struct BusState {
    /// Retained frames, contiguous by sequence number.
    frames: VecDeque<(u64, String)>,
    /// Sequence number the next published frame will get.
    next_seq: u64,
    /// No further frames will be published (job reached a terminal state).
    closed: bool,
}

struct BusShared {
    cap: usize,
    epoch: Instant,
    state: Mutex<BusState>,
    cond: Condvar,
    /// Live [`ProgressReceiver`]s. The tracer tee consults this so an
    /// unwatched job pays nothing for its Debug-level instrumentation.
    subscribers: AtomicUsize,
}

/// A cloneable handle to one job's bounded progress ring.
#[derive(Clone)]
pub struct ProgressBus {
    shared: Arc<BusShared>,
}

impl Default for ProgressBus {
    fn default() -> Self {
        ProgressBus::new(PROGRESS_BUS_CAPACITY)
    }
}

impl std::fmt::Debug for ProgressBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.state.lock().unwrap();
        write!(
            f,
            "ProgressBus(cap={}, next_seq={}, retained={}, closed={})",
            self.shared.cap,
            st.next_seq,
            st.frames.len(),
            st.closed
        )
    }
}

/// One read from a [`ProgressReceiver`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Progress {
    /// A retained or live frame: `(seq, record)` where `record` is the
    /// NDJSON-encoded trace/lifecycle object (no trailing newline).
    Event {
        /// Sequence number of the frame.
        seq: u64,
        /// The encoded record.
        line: String,
    },
    /// The ring dropped `missed` frames between the receiver's cursor
    /// and the oldest retained frame (drop-oldest backpressure).
    Gap {
        /// How many frames were lost.
        missed: u64,
    },
    /// The bus is closed and fully drained; no more frames will come.
    Closed,
    /// The wait timed out with nothing new (caller may emit a heartbeat).
    Idle,
}

impl ProgressBus {
    /// A bus retaining at most `cap` frames (minimum 1).
    pub fn new(cap: usize) -> ProgressBus {
        ProgressBus {
            shared: Arc::new(BusShared {
                cap: cap.max(1),
                epoch: Instant::now(),
                state: Mutex::new(BusState { frames: VecDeque::new(), next_seq: 0, closed: false }),
                cond: Condvar::new(),
                subscribers: AtomicUsize::new(0),
            }),
        }
    }

    /// Is at least one [`ProgressReceiver`] currently attached? The
    /// tracer tee checks this per record: an unwatched bus receives only
    /// the frames published directly on it (`job.state` lifecycle), so
    /// jobs nobody watches pay nothing for their instrumentation.
    pub fn watched(&self) -> bool {
        self.shared.subscribers.load(Ordering::Relaxed) > 0
    }

    /// Publish one pre-encoded record line; returns its sequence number.
    /// Closed buses drop the frame (publishing after terminal state is a
    /// benign race, not an error).
    pub fn publish_line(&self, line: &str) -> u64 {
        let mut st = self.shared.state.lock().unwrap();
        let seq = st.next_seq;
        if st.closed {
            return seq;
        }
        st.next_seq += 1;
        st.frames.push_back((seq, line.to_string()));
        while st.frames.len() > self.shared.cap {
            st.frames.pop_front();
        }
        drop(st);
        self.shared.cond.notify_all();
        seq
    }

    /// Build and publish an `event`-kind record (used by the serve layer
    /// for lifecycle frames the tracer does not emit, e.g. `job.state`).
    /// Timestamps are microseconds since bus creation.
    pub fn publish_event(&self, name: &str, fields: &[(&str, Json)]) -> u64 {
        let ts = self.shared.epoch.elapsed().as_micros() as u64;
        let mut pairs: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 4);
        pairs.push(("ts_us".to_string(), Json::from(ts)));
        pairs.push(("kind".to_string(), Json::from("event")));
        pairs.push(("level".to_string(), Json::from("info")));
        pairs.push(("name".to_string(), Json::from(name)));
        for (k, v) in fields {
            pairs.push(((*k).to_string(), v.clone()));
        }
        self.publish_line(&Json::Obj(pairs).to_string())
    }

    /// Mark the bus terminal: subscribers drain what is retained, then
    /// read [`Progress::Closed`]. Idempotent.
    pub fn close(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.shared.cond.notify_all();
    }

    /// Has [`ProgressBus::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().unwrap().closed
    }

    /// Sequence number the next published frame would receive (i.e. the
    /// total number of frames ever published).
    pub fn published(&self) -> u64 {
        self.shared.state.lock().unwrap().next_seq
    }

    /// Subscribe starting at `from_seq` (clamped forward to the oldest
    /// retained frame — the bounded replay window). `None` replays
    /// everything still retained.
    pub fn subscribe(&self, from_seq: Option<u64>) -> ProgressReceiver {
        self.shared.subscribers.fetch_add(1, Ordering::SeqCst);
        ProgressReceiver { shared: Arc::clone(&self.shared), cursor: from_seq.unwrap_or(0) }
    }
}

/// A subscriber cursor over a [`ProgressBus`]; each receiver tracks its
/// own position, so replay and live tail need no per-subscriber queue.
pub struct ProgressReceiver {
    shared: Arc<BusShared>,
    cursor: u64,
}

impl Drop for ProgressReceiver {
    fn drop(&mut self) {
        self.shared.subscribers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl ProgressReceiver {
    /// Sequence number of the next frame this receiver will deliver.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Next frame, gap marker, close, or [`Progress::Idle`] after
    /// `timeout` with nothing new.
    pub fn next(&mut self, timeout: Duration) -> Progress {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            // Frames are contiguous: front carries the oldest retained seq.
            let oldest = st.frames.front().map(|(s, _)| *s).unwrap_or(st.next_seq);
            if self.cursor < oldest {
                let missed = oldest - self.cursor;
                self.cursor = oldest;
                return Progress::Gap { missed };
            }
            if self.cursor < st.next_seq {
                let idx = (self.cursor - oldest) as usize;
                let (seq, line) = st.frames[idx].clone();
                self.cursor = seq + 1;
                return Progress::Event { seq, line };
            }
            if st.closed {
                return Progress::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Progress::Idle;
            }
            let (guard, res) = self.shared.cond.wait_timeout(st, deadline - now).unwrap();
            st = guard;
            if res.timed_out() {
                // Re-check once under the lock, then report idle.
                let oldest = st.frames.front().map(|(s, _)| *s).unwrap_or(st.next_seq);
                if self.cursor >= st.next_seq && self.cursor >= oldest && !st.closed {
                    return Progress::Idle;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const TICK: Duration = Duration::from_millis(5);

    #[test]
    fn replay_then_live_then_closed() {
        let bus = ProgressBus::new(8);
        bus.publish_event("phase.setup", &[]);
        bus.publish_event("rank.layer", &[("rank", Json::from(1u64))]);
        let mut rx = bus.subscribe(None);
        // Bounded replay of everything retained.
        assert!(matches!(rx.next(TICK), Progress::Event { seq: 0, .. }));
        assert!(matches!(rx.next(TICK), Progress::Event { seq: 1, .. }));
        assert_eq!(rx.next(TICK), Progress::Idle);
        // Live tail.
        bus.publish_event("rank.layer", &[("rank", Json::from(2u64))]);
        match rx.next(TICK) {
            Progress::Event { seq: 2, line } => assert!(line.contains("rank.layer")),
            other => panic!("expected live frame, got {other:?}"),
        }
        bus.close();
        assert_eq!(rx.next(TICK), Progress::Closed);
        // Publishing after close is dropped, not an error.
        bus.publish_event("rank.layer", &[]);
        assert_eq!(bus.published(), 3);
    }

    #[test]
    fn late_subscriber_replay_is_bounded_with_gap_marker() {
        let cap = 16usize;
        let bus = ProgressBus::new(cap);
        for i in 0..100u64 {
            bus.publish_event("rank.layer", &[("rank", Json::from(i))]);
        }
        let mut rx = bus.subscribe(None);
        // The first read reports the dropped prefix explicitly.
        match rx.next(TICK) {
            Progress::Gap { missed } => assert_eq!(missed, 100 - cap as u64),
            other => panic!("expected gap, got {other:?}"),
        }
        // Then replays exactly the retained window, in order.
        let mut seen = Vec::new();
        while let Progress::Event { seq, .. } = rx.next(TICK) {
            seen.push(seq);
        }
        assert_eq!(seen.len(), cap);
        assert_eq!(seen.first(), Some(&(100 - cap as u64)));
        assert_eq!(seen.last(), Some(&99));
    }

    #[test]
    fn resume_from_seq_skips_already_seen_frames() {
        let bus = ProgressBus::new(32);
        for _ in 0..5 {
            bus.publish_event("heuristic.step", &[]);
        }
        let mut rx = bus.subscribe(Some(3));
        assert!(matches!(rx.next(TICK), Progress::Event { seq: 3, .. }));
        assert!(matches!(rx.next(TICK), Progress::Event { seq: 4, .. }));
        assert_eq!(rx.next(TICK), Progress::Idle);
    }

    #[test]
    fn blocking_receiver_wakes_on_publish() {
        let bus = ProgressBus::new(8);
        let bus2 = bus.clone();
        let t = std::thread::spawn(move || {
            let mut rx = bus2.subscribe(None);
            rx.next(Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        bus.publish_event("job.state", &[("state", Json::from("running"))]);
        match t.join().unwrap() {
            Progress::Event { seq: 0, line } => assert!(line.contains("job.state")),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn progress_name_filter() {
        for yes in [
            "rank.layer",
            "phase.setup",
            "heuristic.step",
            "store.hit",
            "job",
            "job.state",
            "synthesis.stats",
            "serve.job",
            "budget.spent",
        ] {
            assert!(is_progress_event(yes), "{yes} should be progress-relevant");
        }
        for no in ["bdd.gc", "serve.conn_rejected", "checkpoint.warning", "route.failover"] {
            assert!(!is_progress_event(no), "{no} should not be progress-relevant");
        }
    }
}
