//! # stsyn-store — a content-addressed, crash-safe artifact store
//!
//! Synthesis in this workspace is deterministic: the same submission
//! content always produces byte-identical rank layers, recovery groups
//! and results (the property the crash/chaos sweeps prove). That makes
//! finished work cacheable. This crate stores two kinds of artifacts
//! under one content key:
//!
//! * **published results** — the terminal `result.json` payload of a
//!   completed job, keyed by the submission's exact content fingerprint
//!   (workload *and* knobs, budget included). An exact-key hit can
//!   answer a resubmission without running anything.
//! * **checkpoint prefixes** — the write-ahead journal plus the
//!   `rank-*.bdd` snapshots a strong job committed, keyed *additionally*
//!   by a budget-independent "warm" fingerprint. A warm-key hit seeds a
//!   new job's checkpoint directory so `synthesize_resumable` replays
//!   the prior run's committed work instead of recomputing it — the
//!   same machinery that makes crash-resume byte-identical makes
//!   warm-start byte-identical.
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/
//!   index.bin             fsync'd append-only index (framed, CRC'd)
//!   tmp/                  staging for in-flight publishes (wiped at open)
//!   objects/<key:016x>/   one entry:
//!     manifest.txt        per-file CRC/length manifest
//!     result.json         terminal result payload   (optional)
//!     ckpt/journal.bin    checkpoint journal        (optional)
//!     ckpt/rank-*.bdd     committed rank snapshots  (optional)
//! ```
//!
//! ## Crash safety
//!
//! A publish stages the whole entry under `tmp/`, fsyncs every file,
//! renames the staging directory into `objects/` (atomic on POSIX),
//! fsyncs `objects/`, and only then appends the entry's index record —
//! write-ahead, fsync'd, CRC-framed like the checkpoint journal. Every
//! crash window degrades to a clean state at the next [`Store::open`]:
//! a torn index tail is salvaged, leftover staging is wiped, an object
//! directory without an index record (crash between rename and append)
//! is removed, and an index record without its directory (crash between
//! a `Del` append and the directory removal it logs) is dropped.
//!
//! ## Read safety
//!
//! Every read re-verifies CRCs: the index frame guards the record, the
//! index record guards the manifest bytes, and the manifest guards each
//! artifact file. A mismatch anywhere surfaces as the **typed**
//! [`StoreError::Corrupt`] and evicts the entry — a corrupt artifact
//! degrades to a cache miss, never a wrong result and never a panic.
//!
//! ## Eviction
//!
//! The store is size-capped (`cap_bytes`, 0 = unbounded) with LRU
//! eviction: lookups and warm-start seeds touch their entry; publishes
//! that push the total over the cap evict least-recently-used entries
//! (durably: `Del` record first, then the directory) until back under.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Index file name under the store root.
pub const INDEX_FILE: &str = "index.bin";
/// Index header magic.
pub const INDEX_MAGIC: &[u8; 8] = b"STSYNSTO";
/// Index format version.
pub const INDEX_VERSION: u32 = 1;
/// Per-entry manifest file name.
pub const MANIFEST_FILE: &str = "manifest.txt";
/// Result payload file name inside an entry.
pub const RESULT_FILE: &str = "result.json";
/// Checkpoint subdirectory inside an entry.
pub const CKPT_DIR: &str = "ckpt";
/// Checkpoint journal file name (mirrors `stsyn_core::checkpoint`).
pub const JOURNAL_FILE: &str = "journal.bin";

const OBJECTS_DIR: &str = "objects";
const TMP_DIR: &str = "tmp";

// ------------------------------------------------------------------ errors

/// Why a store operation failed. Corruption is *typed* and already
/// handled (the offending entry is evicted) by the time the caller sees
/// it — treating it as a cache miss is always sound.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble talking to the store.
    Io {
        /// What the store was doing.
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// An artifact failed CRC or structural verification; the entry has
    /// been dropped from the store.
    Corrupt {
        /// The entry's exact content key.
        key: u64,
        /// What failed verification.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { context, source } => {
                write!(f, "store I/O error ({context}): {source}")
            }
            StoreError::Corrupt { key, detail } => {
                write!(f, "store entry {key:016x} is corrupt ({detail}); entry dropped")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { .. } => None,
        }
    }
}

fn io_err(context: impl Into<String>, source: io::Error) -> StoreError {
    StoreError::Io { context: context.into(), source }
}

// ------------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3), the same polynomial the BDD serialization and
/// checkpoint journal use, so every artifact layer shares one checksum
/// discipline.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ----------------------------------------------------------- index records

const FLAG_RESULT: u8 = 1 << 0;
const FLAG_CKPT: u8 = 1 << 1;

#[derive(Debug, Clone, PartialEq, Eq)]
enum IndexRecord {
    /// An entry became live: rename into `objects/` already durable.
    /// `flags` carries [`FLAG_RESULT`] / [`FLAG_CKPT`].
    Put { key: u64, warm: u64, bytes: u64, ranks: u32, flags: u8, manifest_crc: u32 },
    /// LRU touch (lookup or warm-start seed).
    Touch { key: u64 },
    /// The entry is logically gone; its directory removal may still be
    /// pending (open() finishes the job).
    Del { key: u64 },
}

fn encode_record(rec: &IndexRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match rec {
        IndexRecord::Put { key, warm, bytes, ranks, flags, manifest_crc } => {
            out.push(1u8);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&warm.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
            out.extend_from_slice(&ranks.to_le_bytes());
            out.push(*flags);
            out.extend_from_slice(&manifest_crc.to_le_bytes());
        }
        IndexRecord::Touch { key } => {
            out.push(2u8);
            out.extend_from_slice(&key.to_le_bytes());
        }
        IndexRecord::Del { key } => {
            out.push(3u8);
            out.extend_from_slice(&key.to_le_bytes());
        }
    }
    out
}

fn decode_record(payload: &[u8]) -> Option<IndexRecord> {
    let (&tag, rest) = payload.split_first()?;
    let u64_at =
        |b: &[u8], at: usize| Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?));
    let u32_at =
        |b: &[u8], at: usize| Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?));
    match tag {
        1 if rest.len() == 33 => Some(IndexRecord::Put {
            key: u64_at(rest, 0)?,
            warm: u64_at(rest, 8)?,
            bytes: u64_at(rest, 16)?,
            ranks: u32_at(rest, 24)?,
            flags: *rest.get(28)?,
            manifest_crc: u32_at(rest, 29)?,
        }),
        2 if rest.len() == 8 => Some(IndexRecord::Touch { key: u64_at(rest, 0)? }),
        3 if rest.len() == 8 => Some(IndexRecord::Del { key: u64_at(rest, 0)? }),
        _ => None,
    }
}

/// Read an index file, salvaging the longest valid prefix — the same
/// torn-tail discipline as the checkpoint journal. A missing file is an
/// empty index; a corrupt header discards the whole file (open() rewrites
/// it from the surviving object directories — which, for an index that
/// never made it to disk intact, is none).
fn read_index(path: &Path) -> Result<Vec<IndexRecord>, StoreError> {
    let buf = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(format!("reading {}", path.display()), e)),
    };
    let header_len = INDEX_MAGIC.len() + 4;
    if buf.len() < header_len
        || &buf[..INDEX_MAGIC.len()] != INDEX_MAGIC
        || u32::from_le_bytes(buf[INDEX_MAGIC.len()..header_len].try_into().expect("4 bytes"))
            != INDEX_VERSION
    {
        return Ok(Vec::new());
    }
    let mut records = Vec::new();
    let mut pos = header_len;
    while pos < buf.len() {
        let frame = (|| {
            let len = u32::from_le_bytes(buf.get(pos..pos + 4)?.try_into().ok()?) as usize;
            let stored = u32::from_le_bytes(buf.get(pos + 4..pos + 8)?.try_into().ok()?);
            let payload = buf.get(pos + 8..(pos + 8).checked_add(len)?)?;
            if crc32(payload) != stored {
                return None;
            }
            decode_record(payload).map(|r| (r, 8 + len))
        })();
        match frame {
            Some((rec, advance)) => {
                records.push(rec);
                pos += advance;
            }
            None => break, // torn or corrupt tail: salvage the prefix
        }
    }
    Ok(records)
}

// ---------------------------------------------------------------- manifest

/// One artifact file inside an entry, as recorded by its manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestFile {
    /// Entry-relative path (`result.json`, `ckpt/journal.bin`, ...).
    name: String,
    crc: u32,
    len: u64,
}

fn render_manifest(key: u64, warm: u64, files: &[ManifestFile]) -> String {
    let mut out = format!("stsyn-store-manifest v1\nkey {key:016x}\nwarm {warm:016x}\n");
    for f in files {
        out.push_str(&format!("file {:08x} {} {}\n", f.crc, f.len, f.name));
    }
    out
}

fn parse_manifest(text: &str) -> Option<(u64, u64, Vec<ManifestFile>)> {
    let mut lines = text.lines();
    if lines.next()? != "stsyn-store-manifest v1" {
        return None;
    }
    let key = u64::from_str_radix(lines.next()?.strip_prefix("key ")?, 16).ok()?;
    let warm = u64::from_str_radix(lines.next()?.strip_prefix("warm ")?, 16).ok()?;
    let mut files = Vec::new();
    for line in lines {
        let rest = line.strip_prefix("file ")?;
        let mut parts = rest.splitn(3, ' ');
        let crc = u32::from_str_radix(parts.next()?, 16).ok()?;
        let len = parts.next()?.parse::<u64>().ok()?;
        let name = parts.next()?.to_string();
        if name.is_empty() || name.starts_with('/') || name.contains("..") {
            return None;
        }
        files.push(ManifestFile { name, crc, len });
    }
    Some((key, warm, files))
}

// ----------------------------------------------------------------- reports

/// What a publish did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishReport {
    /// A new or upgraded entry became live (false: an equal-or-better
    /// entry already existed and the publish was skipped).
    pub published: bool,
    /// Entries evicted to get back under the byte cap.
    pub evicted: u64,
    /// Bytes those evictions freed.
    pub freed_bytes: u64,
}

/// What a warm-start seed found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedReport {
    /// The exact content key of the entry the checkpoint came from.
    pub source_key: u64,
    /// Committed rank-layer snapshots the seed carries.
    pub ranks: u32,
}

/// What a GC pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries evicted.
    pub evicted: u64,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Entries remaining.
    pub entries: u64,
    /// Bytes remaining.
    pub bytes: u64,
}

/// What a verification pass found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Entries whose every artifact passed CRC verification.
    pub verified: u64,
    /// Entries that failed verification and were dropped.
    pub corrupt_dropped: u64,
}

/// A point-in-time snapshot of the store's counters and footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live entries.
    pub entries: u64,
    /// Bytes across live entries.
    pub bytes: u64,
    /// Configured byte cap (0 = unbounded).
    pub cap_bytes: u64,
    /// Exact-key result lookups that returned a verified payload.
    pub hits: u64,
    /// Warm-key checkpoint seeds that materialized a prefix.
    pub partial_hits: u64,
    /// Exact-key lookups that found nothing usable.
    pub misses: u64,
    /// Entries evicted (LRU cap pressure or explicit GC).
    pub evictions: u64,
    /// Entries dropped because an artifact failed verification.
    pub corrupt_dropped: u64,
    /// Entries published (new or upgraded) since open.
    pub publishes: u64,
}

// ------------------------------------------------------------------- store

#[derive(Debug, Clone)]
struct Entry {
    warm: u64,
    bytes: u64,
    ranks: u32,
    flags: u8,
    manifest_crc: u32,
    /// LRU clock value at last use; larger = more recent.
    used: u64,
}

impl Entry {
    fn has_result(&self) -> bool {
        self.flags & FLAG_RESULT != 0
    }

    fn has_ckpt(&self) -> bool {
        self.flags & FLAG_CKPT != 0
    }
}

struct Inner {
    entries: HashMap<u64, Entry>,
    total_bytes: u64,
    clock: u64,
    index: File,
}

/// The artifact store. All operations are safe under concurrent use from
/// many threads; one instance must own its root directory (the daemon
/// opens exactly one per state directory).
pub struct Store {
    root: PathBuf,
    cap_bytes: u64,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    partial_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt_dropped: AtomicU64,
    publishes: AtomicU64,
}

impl Store {
    /// Open (or create) a store rooted at `root` with the given byte cap
    /// (0 = unbounded). Recovery runs here: the index's longest valid
    /// prefix is loaded, staging leftovers and orphan object directories
    /// are removed, entries whose directory or manifest is gone are
    /// dropped, and the index is rewritten compact and fsync'd.
    pub fn open(root: impl Into<PathBuf>, cap_bytes: u64) -> Result<Store, StoreError> {
        let root = root.into();
        let objects = root.join(OBJECTS_DIR);
        let tmp = root.join(TMP_DIR);
        fs::create_dir_all(&objects)
            .map_err(|e| io_err(format!("creating {}", objects.display()), e))?;
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(&tmp).map_err(|e| io_err(format!("creating {}", tmp.display()), e))?;

        // Replay the index into the live map (last record wins).
        let mut entries: HashMap<u64, Entry> = HashMap::new();
        let mut clock = 0u64;
        for rec in read_index(&root.join(INDEX_FILE))? {
            clock += 1;
            match rec {
                IndexRecord::Put { key, warm, bytes, ranks, flags, manifest_crc } => {
                    entries.insert(
                        key,
                        Entry { warm, bytes, ranks, flags, manifest_crc, used: clock },
                    );
                }
                IndexRecord::Touch { key } => {
                    if let Some(e) = entries.get_mut(&key) {
                        e.used = clock;
                    }
                }
                IndexRecord::Del { key } => {
                    entries.remove(&key);
                }
            }
        }

        // Drop entries whose on-disk half is missing or whose manifest no
        // longer matches the record (crash or tampering between then and
        // now); finish pending removals by deleting orphan directories.
        entries.retain(|key, e| {
            let manifest = objects.join(format!("{key:016x}")).join(MANIFEST_FILE);
            matches!(fs::read(&manifest), Ok(bytes) if crc32(&bytes) == e.manifest_crc)
        });
        if let Ok(dir) = fs::read_dir(&objects) {
            for d in dir.flatten() {
                let name = d.file_name();
                let live = name
                    .to_str()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .is_some_and(|k| entries.contains_key(&k));
                if !live {
                    let _ = fs::remove_dir_all(d.path());
                }
            }
        }

        let total_bytes = entries.values().map(|e| e.bytes).sum();
        let index = rewrite_index(&root, &entries)?;
        let store = Store {
            root,
            cap_bytes,
            inner: Mutex::new(Inner { entries, total_bytes, clock, index }),
            hits: AtomicU64::new(0),
            partial_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt_dropped: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
        };
        // Enforce the cap at open too: a restart with a smaller cap (or a
        // crash mid-eviction) must not leave the store oversized.
        if cap_bytes > 0 {
            store.gc(None)?;
        }
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn object_dir(&self, key: u64) -> PathBuf {
        self.root.join(OBJECTS_DIR).join(format!("{key:016x}"))
    }

    /// Publish an entry: a terminal result payload, a checkpoint
    /// directory (its `journal.bin` + `rank-*.bdd` files), or both.
    /// Idempotent: republishing a key whose stored entry is at least as
    /// good (has a result when ours does; has at least as many rank
    /// layers) is skipped; a strictly better entry replaces the old one.
    pub fn publish(
        &self,
        key: u64,
        warm: u64,
        result_json: Option<&str>,
        ckpt_dir: Option<&Path>,
    ) -> Result<PublishReport, StoreError> {
        // Gather checkpoint artifacts (names only, contents copied below).
        let mut ckpt_files: Vec<PathBuf> = Vec::new();
        if let Some(dir) = ckpt_dir {
            let journal = dir.join(JOURNAL_FILE);
            if journal.is_file() {
                ckpt_files.push(journal);
                let mut ranks: Vec<PathBuf> = Vec::new();
                if let Ok(rd) = fs::read_dir(dir) {
                    for d in rd.flatten() {
                        let name = d.file_name();
                        let Some(name) = name.to_str() else { continue };
                        if name.starts_with("rank-") && name.ends_with(".bdd") {
                            ranks.push(d.path());
                        }
                    }
                }
                ranks.sort();
                ckpt_files.extend(ranks);
            }
        }
        let ranks = ckpt_files.iter().filter(|p| is_rank_file(p)).count() as u32;
        let has_result = result_json.is_some();
        if !has_result && ckpt_files.is_empty() {
            return Ok(PublishReport::default());
        }

        let has_ckpt = !ckpt_files.is_empty();
        let flags = (u8::from(has_result) * FLAG_RESULT) | (u8::from(has_ckpt) * FLAG_CKPT);

        let mut inner = self.lock();
        if let Some(existing) = inner.entries.get(&key) {
            let better = (has_result && !existing.has_result()) || ranks > existing.ranks;
            if !better {
                return Ok(PublishReport::default());
            }
        }

        // Stage the whole entry, fsync'd, then rename it live.
        let staging = self.root.join(TMP_DIR).join(format!("{key:016x}-{}", inner.clock));
        fs::create_dir_all(staging.join(CKPT_DIR))
            .map_err(|e| io_err(format!("staging {}", staging.display()), e))?;
        let mut files: Vec<ManifestFile> = Vec::new();
        let mut total = 0u64;
        if let Some(text) = result_json {
            let bytes = text.as_bytes();
            write_file_synced(&staging.join(RESULT_FILE), bytes)?;
            files.push(ManifestFile {
                name: RESULT_FILE.to_string(),
                crc: crc32(bytes),
                len: bytes.len() as u64,
            });
            total += bytes.len() as u64;
        }
        for src in &ckpt_files {
            let name = src.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
            let bytes =
                fs::read(src).map_err(|e| io_err(format!("reading {}", src.display()), e))?;
            write_file_synced(&staging.join(CKPT_DIR).join(&name), &bytes)?;
            files.push(ManifestFile {
                name: format!("{CKPT_DIR}/{name}"),
                crc: crc32(&bytes),
                len: bytes.len() as u64,
            });
            total += bytes.len() as u64;
        }
        let manifest = render_manifest(key, warm, &files);
        write_file_synced(&staging.join(MANIFEST_FILE), manifest.as_bytes())?;
        total += manifest.len() as u64;
        sync_dir(&staging.join(CKPT_DIR));
        sync_dir(&staging);

        // Replace: durably log the old entry's death, then clear its
        // directory so the rename lands.
        let dst = self.object_dir(key);
        if let Some(old) = inner.entries.remove(&key) {
            append_record(&mut inner.index, &IndexRecord::Del { key })?;
            inner.total_bytes -= old.bytes;
            let _ = fs::remove_dir_all(&dst);
        }
        fs::rename(&staging, &dst).map_err(|e| io_err(format!("renaming {}", dst.display()), e))?;
        sync_dir(&self.root.join(OBJECTS_DIR));
        let manifest_crc = crc32(manifest.as_bytes());
        let rec = IndexRecord::Put { key, warm, bytes: total, ranks, flags, manifest_crc };
        append_record(&mut inner.index, &rec)?;
        inner.clock += 1;
        let used = inner.clock;
        inner.entries.insert(key, Entry { warm, bytes: total, ranks, flags, manifest_crc, used });
        inner.total_bytes += total;
        self.publishes.fetch_add(1, Ordering::Relaxed);

        let (evicted, freed_bytes) = self.evict_to_cap(&mut inner, self.cap_bytes)?;
        Ok(PublishReport { published: true, evicted, freed_bytes })
    }

    /// Look up a published result by exact content key. `Ok(Some(text))`
    /// is the CRC-verified payload; `Ok(None)` is a plain miss; a typed
    /// [`StoreError::Corrupt`] means the entry failed verification and
    /// has been evicted — callers treat it exactly like a miss.
    pub fn lookup_result(&self, key: u64) -> Result<Option<String>, StoreError> {
        let mut inner = self.lock();
        let Some(entry) = inner.entries.get(&key).cloned() else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        };
        if !entry.has_result() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        let files = match self.verified_manifest(key, &entry) {
            Ok(files) => files,
            Err(detail) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Err(self.drop_corrupt(&mut inner, key, detail));
            }
        };
        let Some(meta) = files.iter().find(|f| f.name == RESULT_FILE) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Err(self.drop_corrupt(&mut inner, key, "manifest lists no result".into()));
        };
        let path = self.object_dir(key).join(RESULT_FILE);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Err(self.drop_corrupt(&mut inner, key, format!("unreadable result: {e}")));
            }
        };
        if bytes.len() as u64 != meta.len || crc32(&bytes) != meta.crc {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Err(self.drop_corrupt(&mut inner, key, "result payload CRC mismatch".into()));
        }
        let Ok(text) = String::from_utf8(bytes) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Err(self.drop_corrupt(&mut inner, key, "result is not UTF-8".into()));
        };
        self.touch(&mut inner, key)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Ok(Some(text))
    }

    /// Is an entry (result or checkpoint) live under this exact key?
    pub fn contains(&self, key: u64) -> bool {
        self.lock().entries.contains_key(&key)
    }

    /// Does the entry under this exact key carry a published result?
    pub fn contains_result(&self, key: u64) -> bool {
        self.lock().entries.get(&key).is_some_and(|e| e.has_result())
    }

    /// Seed a job's checkpoint directory from the best warm-key match:
    /// the journal plus every rank snapshot of the matching entry with
    /// the most committed rank layers (ties: most recently used). Every
    /// file is CRC-verified before it lands in `dest`; a corrupt
    /// candidate is evicted and the next-best one tried. `Ok(None)` means
    /// no usable match.
    pub fn seed_checkpoint(
        &self,
        warm: u64,
        dest: &Path,
    ) -> Result<Option<SeedReport>, StoreError> {
        let mut inner = self.lock();
        loop {
            let best = inner
                .entries
                .iter()
                .filter(|(_, e)| e.warm == warm && e.has_ckpt())
                .map(|(k, e)| (*k, e.clone()))
                .max_by_key(|(_, e)| (e.ranks, e.used));
            let Some((key, entry)) = best else { return Ok(None) };
            match self.try_seed(key, &entry, dest) {
                Ok(ranks) => {
                    self.touch(&mut inner, key)?;
                    self.partial_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(SeedReport { source_key: key, ranks }));
                }
                Err(detail) => {
                    // Typed corruption: evict and try the next candidate.
                    let _ = fs::remove_dir_all(dest);
                    let _ = self.drop_corrupt(&mut inner, key, detail);
                }
            }
        }
    }

    fn try_seed(&self, key: u64, entry: &Entry, dest: &Path) -> Result<u32, String> {
        let files = self.verified_manifest(key, entry)?;
        let ckpt: Vec<&ManifestFile> =
            files.iter().filter(|f| f.name.starts_with(&format!("{CKPT_DIR}/"))).collect();
        if !ckpt.iter().any(|f| f.name == format!("{CKPT_DIR}/{JOURNAL_FILE}")) {
            return Err("no checkpoint journal in entry".into());
        }
        fs::create_dir_all(dest).map_err(|e| format!("cannot create {}: {e}", dest.display()))?;
        let mut ranks = 0u32;
        for f in ckpt {
            let src = self.object_dir(key).join(&f.name);
            let bytes = fs::read(&src).map_err(|e| format!("unreadable {}: {e}", f.name))?;
            if bytes.len() as u64 != f.len || crc32(&bytes) != f.crc {
                return Err(format!("{} CRC mismatch", f.name));
            }
            let name = f.name.strip_prefix(&format!("{CKPT_DIR}/")).unwrap_or(&f.name);
            if is_rank_name(name) {
                ranks += 1;
            }
            write_file_synced(&dest.join(name), &bytes)
                .map_err(|e| format!("cannot seed {name}: {e}"))?;
        }
        sync_dir(dest);
        Ok(ranks)
    }

    /// Evict LRU entries until the store is under `cap_override` (or the
    /// configured cap when `None`).
    pub fn gc(&self, cap_override: Option<u64>) -> Result<GcReport, StoreError> {
        let cap = cap_override.unwrap_or(self.cap_bytes);
        let mut inner = self.lock();
        let (evicted, freed_bytes) = self.evict_to_cap(&mut inner, cap)?;
        Ok(GcReport {
            evicted,
            freed_bytes,
            entries: inner.entries.len() as u64,
            bytes: inner.total_bytes,
        })
    }

    /// Re-verify every artifact of every entry against its manifest and
    /// the manifest against the index; drop (evict) anything corrupt.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut inner = self.lock();
        let keys: Vec<u64> = inner.entries.keys().copied().collect();
        let mut report = VerifyReport::default();
        for key in keys {
            let Some(entry) = inner.entries.get(&key).cloned() else { continue };
            let ok = self.verified_manifest(key, &entry).and_then(|files| {
                for f in &files {
                    let path = self.object_dir(key).join(&f.name);
                    let bytes =
                        fs::read(&path).map_err(|e| format!("unreadable {}: {e}", f.name))?;
                    if bytes.len() as u64 != f.len || crc32(&bytes) != f.crc {
                        return Err(format!("{} CRC mismatch", f.name));
                    }
                }
                Ok(())
            });
            match ok {
                Ok(()) => report.verified += 1,
                Err(detail) => {
                    let _ = self.drop_corrupt(&mut inner, key, detail);
                    report.corrupt_dropped += 1;
                }
            }
        }
        Ok(report)
    }

    /// Current counters and footprint.
    pub fn stats(&self) -> StoreStats {
        let inner = self.lock();
        StoreStats {
            entries: inner.entries.len() as u64,
            bytes: inner.total_bytes,
            cap_bytes: self.cap_bytes,
            hits: self.hits.load(Ordering::Relaxed),
            partial_hits: self.partial_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt_dropped: self.corrupt_dropped.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
        }
    }

    // -------------------------------------------------------- internals

    /// Read and verify the entry's manifest (bytes against the index's
    /// CRC, then structure). Returns the parsed file list or a
    /// description of what is wrong.
    fn verified_manifest(&self, key: u64, entry: &Entry) -> Result<Vec<ManifestFile>, String> {
        let path = self.object_dir(key).join(MANIFEST_FILE);
        let bytes = fs::read(&path).map_err(|e| format!("unreadable manifest: {e}"))?;
        if crc32(&bytes) != entry.manifest_crc {
            return Err("manifest CRC mismatch against index".into());
        }
        let text = String::from_utf8(bytes).map_err(|_| "manifest is not UTF-8".to_string())?;
        let (mkey, _, files) = parse_manifest(&text).ok_or("manifest is malformed")?;
        if mkey != key {
            return Err("manifest names a different key".into());
        }
        Ok(files)
    }

    /// Durably drop a corrupt entry and build its typed error.
    fn drop_corrupt(&self, inner: &mut Inner, key: u64, detail: String) -> StoreError {
        if let Some(old) = inner.entries.remove(&key) {
            inner.total_bytes -= old.bytes;
            let _ = append_record(&mut inner.index, &IndexRecord::Del { key });
            let _ = fs::remove_dir_all(self.object_dir(key));
            self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
        }
        StoreError::Corrupt { key, detail }
    }

    fn touch(&self, inner: &mut Inner, key: u64) -> Result<(), StoreError> {
        append_record(&mut inner.index, &IndexRecord::Touch { key })?;
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.entries.get_mut(&key) {
            e.used = clock;
        }
        Ok(())
    }

    fn evict_to_cap(&self, inner: &mut Inner, cap: u64) -> Result<(u64, u64), StoreError> {
        if cap == 0 {
            return Ok((0, 0));
        }
        let mut evicted = 0u64;
        let mut freed = 0u64;
        while inner.total_bytes > cap {
            let Some((&key, _)) = inner.entries.iter().min_by_key(|(_, e)| e.used) else { break };
            let entry = inner.entries.remove(&key).expect("key just found");
            append_record(&mut inner.index, &IndexRecord::Del { key })?;
            let _ = fs::remove_dir_all(self.object_dir(key));
            inner.total_bytes -= entry.bytes;
            evicted += 1;
            freed += entry.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok((evicted, freed))
    }
}

fn is_rank_file(p: &Path) -> bool {
    p.file_name().and_then(|n| n.to_str()).is_some_and(is_rank_name)
}

fn is_rank_name(name: &str) -> bool {
    name.starts_with("rank-") && name.ends_with(".bdd")
}

/// Write bytes to `path` and fsync the file.
fn write_file_synced(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut f =
        File::create(path).map_err(|e| io_err(format!("creating {}", path.display()), e))?;
    f.write_all(bytes).map_err(|e| io_err(format!("writing {}", path.display()), e))?;
    f.sync_all().map_err(|e| io_err(format!("syncing {}", path.display()), e))
}

/// Best-effort directory fsync (required for rename durability on POSIX;
/// a failure here narrows the crash window rather than breaking it).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Append one framed, CRC'd, fsync'd record to the open index handle.
fn append_record(index: &mut File, rec: &IndexRecord) -> Result<(), StoreError> {
    let payload = encode_record(rec);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    index.write_all(&frame).map_err(|e| io_err("appending index record", e))?;
    index.sync_data().map_err(|e| io_err("syncing index", e))
}

/// Rewrite the index compactly (one `Put` per live entry, LRU order) via
/// tmp + rename + fsync, then reopen it for appending.
fn rewrite_index(root: &Path, entries: &HashMap<u64, Entry>) -> Result<File, StoreError> {
    let path = root.join(INDEX_FILE);
    let tmp = root.join(format!("{INDEX_FILE}.tmp"));
    let mut ordered: Vec<(&u64, &Entry)> = entries.iter().collect();
    ordered.sort_by_key(|(_, e)| e.used);
    {
        let mut f =
            File::create(&tmp).map_err(|e| io_err(format!("creating {}", tmp.display()), e))?;
        f.write_all(INDEX_MAGIC).map_err(|e| io_err("writing index header", e))?;
        f.write_all(&INDEX_VERSION.to_le_bytes()).map_err(|e| io_err("writing index header", e))?;
        for (key, e) in ordered {
            let payload = encode_record(&IndexRecord::Put {
                key: *key,
                warm: e.warm,
                bytes: e.bytes,
                ranks: e.ranks,
                flags: e.flags,
                manifest_crc: e.manifest_crc,
            });
            let mut frame = Vec::with_capacity(payload.len() + 8);
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(&payload).to_le_bytes());
            frame.extend_from_slice(&payload);
            f.write_all(&frame).map_err(|e| io_err("writing index record", e))?;
        }
        f.sync_all().map_err(|e| io_err("syncing index", e))?;
    }
    fs::rename(&tmp, &path).map_err(|e| io_err(format!("renaming {}", path.display()), e))?;
    sync_dir(root);
    OpenOptions::new()
        .append(true)
        .open(&path)
        .map_err(|e| io_err(format!("opening {}", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "stsyn-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ckpt_fixture(root: &Path, ranks: usize) -> PathBuf {
        let dir = root.join("ckpt-fixture");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(JOURNAL_FILE), b"journal-bytes-journal-bytes").unwrap();
        for i in 1..=ranks {
            fs::write(dir.join(format!("rank-{i:05}.bdd")), format!("rank layer {i}")).unwrap();
        }
        dir
    }

    #[test]
    fn publish_lookup_roundtrip_and_reopen() {
        let root = temp_root("roundtrip");
        let store = Store::open(&root, 0).unwrap();
        let rep = store.publish(7, 77, Some("{\"ok\":true,\"id\":1}"), None).unwrap();
        assert!(rep.published);
        assert_eq!(store.lookup_result(7).unwrap().as_deref(), Some("{\"ok\":true,\"id\":1}"));
        assert_eq!(store.lookup_result(8).unwrap(), None);
        let s = store.stats();
        assert_eq!((s.entries, s.hits, s.misses, s.publishes), (1, 1, 1, 1));
        drop(store);

        // Everything survives a reopen (the fsync'd index + objects).
        let store = Store::open(&root, 0).unwrap();
        assert_eq!(store.lookup_result(7).unwrap().as_deref(), Some("{\"ok\":true,\"id\":1}"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn republish_is_idempotent_and_upgrades() {
        let root = temp_root("idem");
        let store = Store::open(&root, 0).unwrap();
        let ck1 = ckpt_fixture(&root, 1);
        assert!(store.publish(5, 55, None, Some(&ck1)).unwrap().published);
        // Same-or-worse: skipped.
        assert!(!store.publish(5, 55, None, Some(&ck1)).unwrap().published);
        // Strictly better (more rank layers): replaces.
        let ck3 = {
            let dir = root.join("ckpt-fixture");
            let _ = fs::remove_dir_all(&dir);
            ckpt_fixture(&root, 3)
        };
        assert!(store.publish(5, 55, None, Some(&ck3)).unwrap().published);
        // A result upgrade also replaces.
        assert!(store.publish(5, 55, Some("{\"ok\":true}"), None).unwrap().published);
        assert_eq!(store.lookup_result(5).unwrap().as_deref(), Some("{\"ok\":true}"));
        assert_eq!(store.stats().entries, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn seed_checkpoint_materializes_verified_prefix() {
        let root = temp_root("seed");
        let store = Store::open(&root, 0).unwrap();
        let ck = ckpt_fixture(&root, 2);
        store.publish(11, 99, None, Some(&ck)).unwrap();
        let dest = root.join("dest-ckpt");
        let seeded = store.seed_checkpoint(99, &dest).unwrap().unwrap();
        assert_eq!((seeded.source_key, seeded.ranks), (11, 2));
        assert_eq!(fs::read(dest.join(JOURNAL_FILE)).unwrap(), b"journal-bytes-journal-bytes");
        assert!(dest.join("rank-00002.bdd").is_file());
        assert_eq!(store.seed_checkpoint(98, &root.join("none")).unwrap(), None);
        assert_eq!(store.stats().partial_hits, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn lru_eviction_respects_cap_and_recency() {
        let root = temp_root("lru");
        // Small cap: entries are ~60-80 bytes each (result + manifest).
        let store = Store::open(&root, 400).unwrap();
        store.publish(1, 0, Some(&"a".repeat(64)), None).unwrap();
        store.publish(2, 0, Some(&"b".repeat(64)), None).unwrap();
        // Touch 1 so 2 becomes the LRU candidate.
        assert!(store.lookup_result(1).unwrap().is_some());
        let rep = store.publish(3, 0, Some(&"c".repeat(64)), None).unwrap();
        assert!(rep.published);
        assert!(rep.evicted >= 1, "cap must force an eviction");
        assert!(store.contains(1), "recently-used entry must survive");
        assert!(!store.contains(2), "LRU entry must be evicted first");
        let s = store.stats();
        assert!(s.bytes <= 400, "store must end under its cap, got {}", s.bytes);
        assert_eq!(s.evictions, rep.evicted);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_with_override_and_to_zero() {
        let root = temp_root("gc");
        let store = Store::open(&root, 0).unwrap();
        for k in 0..4u64 {
            store.publish(k, 0, Some(&format!("{{\"k\":{k}}}")), None).unwrap();
        }
        assert_eq!(store.stats().entries, 4);
        let rep = store.gc(Some(1)).unwrap();
        assert_eq!(rep.evicted, 4);
        assert_eq!(rep.entries, 0);
        assert_eq!(store.stats().bytes, 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_result_is_typed_error_and_miss_never_wrong() {
        let root = temp_root("corrupt");
        let store = Store::open(&root, 0).unwrap();
        store.publish(9, 0, Some("{\"ok\":true,\"payload\":\"real\"}"), None).unwrap();
        // Flip one byte of the stored payload.
        let path = root.join(OBJECTS_DIR).join(format!("{:016x}", 9)).join(RESULT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        match store.lookup_result(9) {
            Err(StoreError::Corrupt { key, .. }) => assert_eq!(key, 9),
            other => panic!("corruption must surface typed, got {other:?}"),
        }
        // The entry is gone: the next lookup is a clean miss.
        assert_eq!(store.lookup_result(9).unwrap(), None);
        assert_eq!(store.stats().corrupt_dropped, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_seed_candidate_is_skipped_not_served() {
        let root = temp_root("corrupt-seed");
        let store = Store::open(&root, 0).unwrap();
        let ck = ckpt_fixture(&root, 1);
        store.publish(21, 5, None, Some(&ck)).unwrap();
        // Corrupt the journal in place.
        let path =
            root.join(OBJECTS_DIR).join(format!("{:016x}", 21)).join(CKPT_DIR).join(JOURNAL_FILE);
        fs::write(&path, b"not the journal").unwrap();
        let dest = root.join("dest");
        assert_eq!(store.seed_checkpoint(5, &dest).unwrap(), None, "corrupt candidate dropped");
        assert!(!dest.join(JOURNAL_FILE).exists(), "no partial seed may remain");
        assert_eq!(store.stats().corrupt_dropped, 1);
        let _ = fs::remove_dir_all(&root);
    }

    /// The seeded crash sweep over publish/read points: manufacture every
    /// intermediate on-disk state a kill could leave behind and prove the
    /// next open recovers to a store that never serves a wrong artifact.
    #[test]
    fn crash_state_sweep_recovers_cleanly() {
        // State A: leftover staging directory (killed mid-publish).
        let root = temp_root("crash-a");
        {
            let store = Store::open(&root, 0).unwrap();
            store.publish(1, 0, Some("{\"ok\":true}"), None).unwrap();
        }
        fs::create_dir_all(root.join(TMP_DIR).join("00000000000000aa-3")).unwrap();
        fs::write(root.join(TMP_DIR).join("00000000000000aa-3").join(RESULT_FILE), b"half")
            .unwrap();
        let store = Store::open(&root, 0).unwrap();
        assert!(!root.join(TMP_DIR).join("00000000000000aa-3").exists(), "staging wiped");
        assert_eq!(store.lookup_result(1).unwrap().as_deref(), Some("{\"ok\":true}"));
        drop(store);
        let _ = fs::remove_dir_all(&root);

        // State B: object directory renamed live but the index append
        // never happened (orphan) — removed, lookups miss cleanly.
        let root = temp_root("crash-b");
        {
            let _ = Store::open(&root, 0).unwrap();
        }
        let orphan = root.join(OBJECTS_DIR).join(format!("{:016x}", 0xBB));
        fs::create_dir_all(&orphan).unwrap();
        fs::write(orphan.join(MANIFEST_FILE), "stsyn-store-manifest v1\n").unwrap();
        let store = Store::open(&root, 0).unwrap();
        assert!(!orphan.exists(), "orphan object dir must be removed");
        assert_eq!(store.lookup_result(0xBB).unwrap(), None);
        drop(store);
        let _ = fs::remove_dir_all(&root);

        // State C: Del record appended but directory removal lost — the
        // reopened store finishes the removal.
        let root = temp_root("crash-c");
        {
            let store = Store::open(&root, 0).unwrap();
            store.publish(0xCC, 0, Some("{\"ok\":true}"), None).unwrap();
            store.gc(Some(1)).unwrap(); // appends Del + removes dir
        }
        // Recreate the directory as if the removal had been lost.
        let dir = root.join(OBJECTS_DIR).join(format!("{:016x}", 0xCC));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST_FILE), "garbage").unwrap();
        let store = Store::open(&root, 0).unwrap();
        assert!(!dir.exists(), "logically-deleted dir must be cleaned up");
        assert_eq!(store.lookup_result(0xCC).unwrap(), None);
        drop(store);
        let _ = fs::remove_dir_all(&root);

        // State D: torn index tail at every truncation point — the valid
        // prefix is salvaged, never a panic, never a wrong result.
        let root = temp_root("crash-d");
        {
            let store = Store::open(&root, 0).unwrap();
            store.publish(1, 0, Some("{\"v\":1}"), None).unwrap();
            store.publish(2, 0, Some("{\"v\":2}"), None).unwrap();
        }
        let index_bytes = fs::read(root.join(INDEX_FILE)).unwrap();
        for cut in (0..index_bytes.len()).step_by(3) {
            let sweep_root = temp_root(&format!("crash-d-{cut}"));
            fs::create_dir_all(&sweep_root).unwrap();
            copy_dir(&root, &sweep_root);
            fs::write(sweep_root.join(INDEX_FILE), &index_bytes[..cut]).unwrap();
            let store = Store::open(&sweep_root, 0).unwrap();
            for key in [1u64, 2] {
                match store.lookup_result(key) {
                    Ok(Some(text)) => assert_eq!(text, format!("{{\"v\":{key}}}")),
                    Ok(None) => {} // a miss is always sound
                    Err(e) => panic!("salvaged store must not error: {e}"),
                }
            }
            drop(store);
            let _ = fs::remove_dir_all(&sweep_root);
        }
        let _ = fs::remove_dir_all(&root);
    }

    fn copy_dir(src: &Path, dst: &Path) {
        for entry in fs::read_dir(src).unwrap().flatten() {
            let to = dst.join(entry.file_name());
            if entry.path().is_dir() {
                fs::create_dir_all(&to).unwrap();
                copy_dir(&entry.path(), &to);
            } else {
                fs::copy(entry.path(), &to).unwrap();
            }
        }
    }

    #[test]
    fn concurrent_publish_and_lookup_are_consistent() {
        let root = temp_root("concurrent");
        let store = std::sync::Arc::new(Store::open(&root, 0).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..25u64 {
                        let key = (t * 25 + i) % 17;
                        let payload = format!("{{\"key\":{key}}}");
                        store.publish(key, 0, Some(&payload), None).unwrap();
                        match store.lookup_result(key) {
                            Ok(Some(text)) => assert_eq!(text, payload),
                            Ok(None) => {} // racing evict/replace: a miss is sound
                            Err(e) => panic!("unexpected corruption under races: {e}"),
                        }
                    }
                });
            }
        });
        let s = store.stats();
        assert_eq!(s.entries, 17);
        assert_eq!(s.corrupt_dropped, 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn verify_drops_corrupt_entries_and_keeps_good_ones() {
        let root = temp_root("verify");
        let store = Store::open(&root, 0).unwrap();
        store.publish(1, 0, Some("{\"good\":1}"), None).unwrap();
        let ck = ckpt_fixture(&root, 1);
        store.publish(2, 7, None, Some(&ck)).unwrap();
        // Corrupt entry 2's rank snapshot.
        let path = root
            .join(OBJECTS_DIR)
            .join(format!("{:016x}", 2))
            .join(CKPT_DIR)
            .join("rank-00001.bdd");
        fs::write(&path, b"zap").unwrap();
        let rep = store.verify().unwrap();
        assert_eq!((rep.verified, rep.corrupt_dropped), (1, 1));
        assert!(store.contains(1));
        assert!(!store.contains(2));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn index_records_roundtrip_and_reject_junk() {
        for rec in [
            IndexRecord::Put {
                key: 7,
                warm: 8,
                bytes: 9,
                ranks: 3,
                flags: FLAG_RESULT | FLAG_CKPT,
                manifest_crc: 0xABCD,
            },
            IndexRecord::Touch { key: u64::MAX },
            IndexRecord::Del { key: 0 },
        ] {
            assert_eq!(decode_record(&encode_record(&rec)).as_ref(), Some(&rec));
        }
        assert_eq!(decode_record(&[]), None);
        assert_eq!(decode_record(&[9, 1, 2, 3]), None);
        assert_eq!(decode_record(&[1, 0]), None, "truncated Put");
    }

    #[test]
    fn manifest_rejects_traversal_and_malformed_lines() {
        let files = vec![ManifestFile { name: "result.json".into(), crc: 1, len: 2 }];
        let text = render_manifest(1, 2, &files);
        let (k, w, parsed) = parse_manifest(&text).unwrap();
        assert_eq!((k, w, parsed), (1, 2, files));
        assert!(parse_manifest("nope").is_none());
        let evil = "stsyn-store-manifest v1\nkey 0000000000000001\nwarm 0000000000000002\nfile 00000001 2 ../../etc/passwd\n";
        assert!(parse_manifest(evil).is_none(), "path traversal must be rejected");
    }
}
