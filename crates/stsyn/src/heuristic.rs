//! The three-pass synthesis heuristic of §V (Fig. 3).
//!
//! Recovery transitions are added in whole groups, rank-by-rank, from
//! deadlock states towards `I`, under four constraints:
//!
//! * **C1** — no group with a groupmate originating in `I` (baked into the
//!   candidate set),
//! * **C2** — recovery goes from `Rank[i]` to `Rank[i−1]` (relaxed in
//!   Pass 3),
//! * **C3** — the groupmates of added recovery must not close a cycle
//!   outside `I` (enforced by `Identify_Resolve_Cycles` on every addition),
//! * **C4** — no groupmate may end in a deadlock state (relaxed in Pass 2).
//!
//! The heuristic is **sound** (everything it returns verifies strongly
//! stabilizing — and this implementation re-checks that) and incomplete:
//! it may fail on protocols for which stabilizing versions exist, in which
//! case [`crate::SynthesisError::DeadlocksRemain`] reports the residue.

use crate::candidates::CandidateSet;
use crate::checkpoint::{CheckpointError, CheckpointSession, StepMode};
use crate::problem::{Options, PartialProgress, Phase, SynthesisError};
use crate::schedule::Schedule;
use crate::stats::SynthesisStats;
use std::time::Instant;
use stsyn_bdd::{Bdd, BddError};
use stsyn_obs::{Json, TraceLevel};
use stsyn_protocol::expr::Expr;
use stsyn_protocol::group::{groups_of_protocol, GroupDesc};
use stsyn_protocol::Protocol;
use stsyn_symbolic::check::{
    closure_holds, strong_convergence, try_closure_holds, try_closure_holds_parts,
    try_strong_convergence, try_strong_convergence_parts, try_weak_convergence,
    try_weak_convergence_parts, weak_convergence,
};
use stsyn_symbolic::ranks::{
    try_compute_ranks_parts_resumed, try_compute_ranks_resumed, RankTable,
};
use stsyn_symbolic::scc::{try_has_cycle, try_scc_decomposition};
use stsyn_symbolic::Engine as ImgEngine;
use stsyn_symbolic::SymbolicContext;

/// What can stop a recovery step: the BDD budget, or — in checkpointed
/// runs — a journal write failure.
enum StepError {
    Bdd(BddError),
    Ckpt(CheckpointError),
}

impl From<BddError> for StepError {
    fn from(e: BddError) -> Self {
        StepError::Bdd(e)
    }
}

/// Snapshot the manager state for a [`SynthesisError::ResourceExhausted`];
/// `ranks_layered`/`groups_added` describe the salvaged partial progress.
pub(crate) fn resource_err(
    ctx: &SymbolicContext,
    phase: Phase,
    cause: BddError,
    ranks_layered: usize,
    groups_added: &[GroupDesc],
) -> SynthesisError {
    let mgr = ctx.mgr_ref();
    SynthesisError::ResourceExhausted {
        phase,
        cause,
        partial: Box::new(PartialProgress {
            ranks_layered,
            groups_added: groups_added.to_vec(),
            live_nodes: mgr.stats().live_nodes,
            ticks: mgr.ticks_used(),
            manager_consistent: mgr.check_consistency().is_ok(),
        }),
    }
}

/// A successful synthesis: the symbolic context, the synthesized relation,
/// the added groups, and the run's statistics.
pub struct Outcome {
    pub(crate) ctx: SymbolicContext,
    /// Compiled legitimate-state predicate `I`.
    pub i: Bdd,
    /// The input protocol's transition relation `δ_p` (after preprocessing
    /// removed any safely-removable cyclic groups).
    pub delta_p: Bdd,
    /// The synthesized relation `δ_pss`.
    pub pss: Bdd,
    /// The recovery groups the heuristic added.
    pub added: Vec<GroupDesc>,
    /// Groups of `p` removed during preprocessing (cycle participants with
    /// no groupmate in `I`); empty in the common case.
    pub removed_from_p: Vec<GroupDesc>,
    /// Run statistics (Figures 6–11 quantities).
    pub stats: SynthesisStats,
    /// The recovery schedule that produced this outcome.
    pub schedule: Schedule,
    /// The image/preimage engine the run used (verification re-uses it).
    pub engine: ImgEngine,
}

impl Outcome {
    /// The symbolic context (for further queries against the result).
    pub fn ctx(&mut self) -> &mut SymbolicContext {
        &mut self.ctx
    }

    /// The input protocol (topology and original actions).
    pub fn protocol(&self) -> &Protocol {
        self.ctx.protocol()
    }

    /// The group descriptors whose relations OR into `pss`: the input
    /// protocol's groups minus the preprocessed removals, plus the added
    /// recovery — the partitioned engines rebuild `p_ss` from these.
    fn pss_descs(&self) -> Vec<GroupDesc> {
        let mut descs: Vec<GroupDesc> = groups_of_protocol(self.ctx.protocol())
            .into_iter()
            .filter(|g| !self.removed_from_p.contains(g))
            .collect();
        descs.extend(self.added.iter().cloned());
        descs
    }

    /// Independently verify that `p_ss` is strongly stabilizing to `I`
    /// (closure + Proposition II.1).
    pub fn verify_strong(&mut self) -> bool {
        if self.engine.is_partitioned() {
            return self.try_verify_strong().expect(crate::problem::INFALLIBLE);
        }
        closure_holds(&mut self.ctx, self.pss, self.i)
            && strong_convergence(&mut self.ctx, self.pss, self.i).holds
    }

    /// Fallible variant of [`Outcome::verify_strong`] for budgeted runs.
    /// Under a partitioned engine the check runs through the clustered
    /// image/preimage (same verdict — the operators are exact).
    #[must_use = "failures are reported through the Result"]
    pub fn try_verify_strong(&mut self) -> Result<bool, BddError> {
        if self.engine.is_partitioned() {
            let descs = self.pss_descs();
            let parts = self.ctx.try_partitioned_relation(&descs)?;
            return Ok(try_closure_holds_parts(&mut self.ctx, &parts, self.i)?
                && try_strong_convergence_parts(&mut self.ctx, &parts, self.i)?.holds);
        }
        Ok(try_closure_holds(&mut self.ctx, self.pss, self.i)?
            && try_strong_convergence(&mut self.ctx, self.pss, self.i)?.holds)
    }

    /// Independently verify weak stabilization.
    pub fn verify_weak(&mut self) -> bool {
        if self.engine.is_partitioned() {
            return self.try_verify_weak().expect(crate::problem::INFALLIBLE);
        }
        closure_holds(&mut self.ctx, self.pss, self.i)
            && weak_convergence(&mut self.ctx, self.pss, self.i).holds
    }

    /// Fallible variant of [`Outcome::verify_weak`] for budgeted runs.
    #[must_use = "failures are reported through the Result"]
    pub fn try_verify_weak(&mut self) -> Result<bool, BddError> {
        if self.engine.is_partitioned() {
            let descs = self.pss_descs();
            let parts = self.ctx.try_partitioned_relation(&descs)?;
            let engine = self.engine;
            return Ok(try_closure_holds_parts(&mut self.ctx, &parts, self.i)?
                && try_weak_convergence_parts(&mut self.ctx, engine, &parts, self.i)?.holds);
        }
        Ok(try_closure_holds(&mut self.ctx, self.pss, self.i)?
            && try_weak_convergence(&mut self.ctx, self.pss, self.i)?.holds)
    }

    /// `δ_pss | I` must equal `δ_p | I` (Problem III.1, output constraint
    /// 2). Always true by construction; exposed for the test suite.
    pub fn preserves_i_behavior(&mut self) -> bool {
        let pss_in_i = self.ctx.restrict_relation(self.pss, self.i);
        // Also require: no pss transition *starts* in I beyond δ_p's
        // (recovery must not fire inside I at all).
        let p_in_i = self.ctx.restrict_relation(self.delta_p, self.i);
        let pss_from_i = self.ctx.mgr().and(self.pss, self.i);
        let p_from_i = self.ctx.mgr().and(self.delta_p, self.i);
        pss_in_i == p_in_i && pss_from_i == p_from_i
    }

    /// Materialize `p_ss` as a [`Protocol`]: the original guarded commands
    /// plus minimized recovery actions extracted from the added groups.
    pub fn extract_protocol(&self) -> Protocol {
        crate::extract::merge_into_protocol(self.ctx.protocol(), &self.added, &self.removed_from_p)
    }

    /// Pretty-print the added recovery, one guarded command per line.
    pub fn describe_recovery(&self) -> String {
        crate::extract::describe(self.ctx.protocol(), &self.added)
    }
}

/// Shared mutable state threaded through the passes. Three quantities are
/// maintained *incrementally* because the heuristic queries them after
/// every group addition: the synthesized relation, its restriction to
/// `¬I` (what cycle detection runs on), and the union of enabled-state
/// predicates (whose complement against `¬I` is the deadlock set — each
/// added group contributes its source cube, so no quantifier is needed).
struct Engine {
    ctx: SymbolicContext,
    i: Bdd,
    not_i: Bdd,
    delta_p: Bdd,
    pss: Bdd,
    /// `pss | ¬I` — maintained incrementally.
    pss_restricted: Bdd,
    /// States with at least one outgoing `pss` transition.
    enabled_union: Bdd,
    /// The rank predicates, kept as GC roots.
    rank_bdds: Vec<Bdd>,
    cands: CandidateSet,
    /// Descriptor → candidate index, built lazily for symmetry mode.
    cand_index: Option<std::collections::HashMap<GroupDesc, usize>>,
    added: Vec<GroupDesc>,
    stats: SynthesisStats,
    opts: Options,
}

/// Live-node threshold above which the engine garbage-collects between
/// heuristic steps.
const GC_THRESHOLD: usize = 6_000_000;

impl Engine {
    /// `Add_Recovery` (Fig. 3): let process `j` contribute groups with a
    /// transition from `From` to `To`, excluding `ruledOutTrans`
    /// (`ruled_out_deadlocks` carries the pass-1-only C4 component; the C1
    /// component is baked into the candidate set), then run
    /// `Identify_Resolve_Cycles` and keep only the cycle-free additions.
    fn deadlocks(&mut self) -> Result<Bdd, BddError> {
        let not_enabled = self.ctx.mgr().try_not(self.enabled_union)?;
        self.ctx.mgr().try_and(self.not_i, not_enabled)
    }

    fn maybe_gc(&mut self, extra: &[Bdd]) {
        if self.ctx.mgr_ref().stats().live_nodes < GC_THRESHOLD {
            return;
        }
        let mut roots = self.cands.roots();
        roots.extend([
            self.pss,
            self.pss_restricted,
            self.enabled_union,
            self.i,
            self.not_i,
            self.delta_p,
        ]);
        roots.extend(self.rank_bdds.iter().copied());
        roots.extend_from_slice(extra);
        self.ctx.gc(&roots);
    }

    /// Commit candidate `ci`: extend the synthesized relation, its `¬I`
    /// restriction and the enabled-state union, and append the group
    /// descriptor. The **only** way a group enters the result — shared by
    /// the live path and journal replay so both perform the identical
    /// symbolic updates.
    fn include_candidate(&mut self, ci: usize) -> Result<(), BddError> {
        let rel = self.cands.all[ci].relation;
        self.pss = self.ctx.mgr().try_or(self.pss, rel)?;
        let rel_restricted = self.ctx.try_restrict_relation(rel, self.not_i)?;
        self.pss_restricted = self.ctx.mgr().try_or(self.pss_restricted, rel_restricted)?;
        let src = self.cands.all[ci].source;
        self.enabled_union = self.ctx.mgr().try_or(self.enabled_union, src)?;
        self.cands.all[ci].included = true;
        self.added.push(self.cands.all[ci].desc.clone());
        self.stats.groups_added += 1;
        Ok(())
    }

    /// Re-apply journaled groups (in journal order — which is the order
    /// the crashed run committed them, so `added` and every incremental
    /// predicate end up identical to that run's state).
    fn replay_groups(&mut self, groups: &[GroupDesc]) -> Result<(), StepError> {
        if groups.is_empty() {
            return Ok(());
        }
        if self.cand_index.is_none() {
            self.cand_index = Some(crate::symmetry::candidate_index(&self.cands));
        }
        for desc in groups {
            let ci = match self.cand_index.as_ref().expect("built above").get(desc) {
                Some(&ci) => ci,
                // The journal names a group this problem does not have:
                // it belongs to a different run (fingerprint collision).
                None => return Err(StepError::Ckpt(CheckpointError::Mismatch)),
            };
            if self.cands.all[ci].included {
                continue;
            }
            self.include_candidate(ci)?;
        }
        Ok(())
    }

    fn add_recovery(
        &mut self,
        from: Bdd,
        to: Bdd,
        j: usize,
        ruled_out_deadlocks: Option<Bdd>,
        key: (u8, u32, u32),
        ckpt: &mut Option<&mut CheckpointSession>,
    ) -> Result<bool, StepError> {
        let scan_start = Instant::now();
        let mut picked: Vec<usize> = Vec::new();
        let idxs = self.cands.by_process[j].clone();
        // A group with readable-source cube `src` and written target
        // `post` has a transition From → To iff
        //     src ∧ From ∧ To[writes ← post]  ≠  ∅,
        // because the target state agrees with the source everywhere else.
        // The cofactor To[writes ← post] is shared by every group with the
        // same `post`, so the per-candidate work is one cube intersection —
        // no primed-variable products ever get built. The same trick
        // serves the pass-1 C4 test (`no groupmate reaches a deadlock` ⟺
        // src ∧ Dead[writes ← post] ≠ ∅).
        let writes = self.ctx.protocol().processes()[j].writes.clone();
        let mut by_post: std::collections::HashMap<Vec<u32>, (Bdd, Option<Bdd>)> =
            std::collections::HashMap::new();
        // Locality prefilter for `From` (src is a cube over the readables).
        let reads = self.ctx.protocol().processes()[j].reads.clone();
        let from_local = self.ctx.try_project_onto(from, &reads)?;
        for ci in idxs {
            if self.cands.all[ci].included {
                continue;
            }
            let src = self.cands.all[ci].source;
            if !self.ctx.mgr().try_intersects(src, from_local)? {
                continue;
            }
            let post = self.cands.all[ci].desc.post.clone();
            let (from_to, dead_cof) = match by_post.get(&post) {
                Some(&pair) => pair,
                None => {
                    let mut lits = Vec::new();
                    for (w, &val) in writes.iter().zip(&post) {
                        lits.extend(self.ctx.cur_literals(*w, val));
                    }
                    lits.sort_unstable_by_key(|&(v, _)| v);
                    let to_cof = self.ctx.mgr().try_cofactor(to, &lits)?;
                    let from_to = self.ctx.mgr().try_and(from, to_cof)?;
                    let dead_cof = match ruled_out_deadlocks {
                        Some(d) => Some(self.ctx.mgr().try_cofactor(d, &lits)?),
                        None => None,
                    };
                    by_post.insert(post.clone(), (from_to, dead_cof));
                    (from_to, dead_cof)
                }
            };
            // Must have a transition From → To.
            if !self.ctx.mgr().try_intersects(src, from_to)? {
                continue;
            }
            // Pass-1 constraint C4: no groupmate may reach a deadlock.
            if let Some(dc) = dead_cof {
                if self.ctx.mgr().try_intersects(src, dc)? {
                    continue;
                }
            }
            picked.push(ci);
        }
        // Symmetry mode: expand every selected group to its full orbit, or
        // drop it when the orbit is not wholly available (which signals an
        // asymmetric invariant). Each cluster is accepted or rejected by
        // cycle resolution as a unit.
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        let mut claimed: std::collections::HashSet<usize> = std::collections::HashSet::new();
        if let Some(sym) = self.opts.symmetry.clone() {
            let index = self
                .cand_index
                .get_or_insert_with(|| crate::symmetry::candidate_index(&self.cands))
                .clone();
            let protocol = self.ctx.protocol().clone();
            for ci in picked {
                if claimed.contains(&ci) {
                    continue;
                }
                match sym.orbit_indices(&protocol, &self.cands, &index, ci) {
                    Some(orbit) => {
                        let fresh: Vec<usize> = orbit
                            .into_iter()
                            .filter(|&m| !self.cands.all[m].included && !claimed.contains(&m))
                            .collect();
                        claimed.extend(fresh.iter().copied());
                        if !fresh.is_empty() {
                            clusters.push(fresh);
                        }
                    }
                    None => continue, // orbit incomplete: skip this group
                }
            }
        } else {
            clusters = picked.into_iter().map(|ci| vec![ci]).collect();
        }
        let mut union_added = Bdd::FALSE;
        for cluster in &clusters {
            for &ci in cluster {
                let rel = self.cands.all[ci].relation;
                union_added = self.ctx.mgr().try_or(union_added, rel)?;
            }
        }
        self.stats.scan_time += scan_start.elapsed();
        if clusters.is_empty() {
            return Ok(false);
        }
        // Identify_Resolve_Cycles: SCCs of (pss ∪ added) | ¬I. The pss
        // part of the restriction is maintained incrementally.
        let added_restricted = self.ctx.try_restrict_relation(union_added, self.not_i)?;
        let restricted = self.ctx.mgr().try_or(self.pss_restricted, added_restricted)?;
        let scc_start = Instant::now();
        let sccs = try_scc_decomposition(&mut self.ctx, restricted, self.not_i, self.opts.scc)?;
        self.stats.scc_time += scc_start.elapsed();
        self.stats.scc_calls += 1;
        self.stats.sccs_found += sccs.len();
        for &scc in &sccs {
            self.stats.scc_nodes_total += self.ctx.mgr_ref().node_count(scc);
        }
        // badTrans: added groups with a transition inside some SCC; a
        // whole cluster is dropped if any member participates in a cycle.
        let include_start = Instant::now();
        let tried = clusters.len();
        let mut kept = 0usize;
        let mut changed = false;
        'cluster: for cluster in clusters {
            for &ci in &cluster {
                let rel = self.cands.all[ci].relation;
                for &scc in &sccs {
                    let m = self.ctx.cur_to_primed();
                    let scc_primed = self.ctx.mgr().try_rename(scc, m)?;
                    let inside = self.ctx.mgr().try_and(rel, scc)?;
                    if self.ctx.mgr().try_intersects(inside, scc_primed)? {
                        continue 'cluster; // participates in a cycle: drop it
                    }
                }
            }
            for ci in cluster {
                self.include_candidate(ci)?;
                if let Some(c) = ckpt.as_deref_mut() {
                    let desc = self.added.last().expect("just pushed").clone();
                    c.record_group(key.0, key.1, key.2, &desc).map_err(StepError::Ckpt)?;
                }
            }
            changed = true;
            kept += 1;
        }
        self.stats.include_time += include_start.elapsed();
        if self.ctx.mgr_ref().tracer().level_enabled(TraceLevel::Debug) {
            self.ctx.mgr_ref().tracer().debug(
                "heuristic.step",
                &[
                    ("pass", Json::from(key.0 as u64)),
                    ("rank", Json::from(key.1 as u64)),
                    ("step", Json::from(key.2 as u64)),
                    ("tried", Json::from(tried as u64)),
                    ("kept", Json::from(kept as u64)),
                    ("discarded", Json::from((tried - kept) as u64)),
                ],
            );
        }
        Ok(changed)
    }

    /// `Add_Convergence` (Fig. 3): walk the recovery schedule, letting each
    /// process add recovery from `From` to `To`; recompute deadlocks after
    /// every process and — in pass 1 — refresh the C4 rule-out set.
    /// Returns the remaining deadlock states.
    ///
    /// In checkpointed runs each schedule step is keyed by
    /// `(pass, rank_key, step)`: a step the journal marks complete is
    /// *replayed* (its recorded groups re-applied, the scan/SCC work
    /// skipped), a step with journaled groups but no completion fence
    /// re-applies those groups and then continues live, and everything
    /// else runs live with write-ahead journaling. Replayed state is
    /// canonical, so the control flow (deadlock recomputation, early
    /// exits) retraces the crashed run exactly.
    fn add_convergence(
        &mut self,
        from: Bdd,
        to: Bdd,
        mut deadlocks: Bdd,
        coord: (u8, u32),
        schedule: &Schedule,
        ckpt: &mut Option<&mut CheckpointSession>,
    ) -> Result<Bdd, StepError> {
        let (pass, rank_key) = coord;
        let mut ruled_out = if pass == 1 { Some(deadlocks) } else { None };
        for (step, p) in schedule.order().to_vec().into_iter().enumerate() {
            self.maybe_gc(&[from, to, deadlocks]);
            let key = (pass, rank_key, step as u32);
            let mode = match ckpt.as_deref_mut() {
                Some(c) => c.step_mode(key.0, key.1, key.2),
                None => StepMode::Live,
            };
            let changed = match mode {
                StepMode::Replay(groups) => {
                    let n = groups.len();
                    self.replay_groups(&groups)?;
                    n > 0
                }
                StepMode::Partial(groups) => {
                    self.replay_groups(&groups)?;
                    let live = self.add_recovery(from, to, p.0, ruled_out, key, ckpt)?;
                    if let Some(c) = ckpt.as_deref_mut() {
                        c.record_step_done(key.0, key.1, key.2, self.ctx.mgr_ref())
                            .map_err(StepError::Ckpt)?;
                    }
                    live || !groups.is_empty()
                }
                StepMode::Live => {
                    let live = self.add_recovery(from, to, p.0, ruled_out, key, ckpt)?;
                    if let Some(c) = ckpt.as_deref_mut() {
                        c.record_step_done(key.0, key.1, key.2, self.ctx.mgr_ref())
                            .map_err(StepError::Ckpt)?;
                    }
                    live
                }
            };
            if changed {
                let dl_start = Instant::now();
                deadlocks = self.deadlocks()?;
                self.stats.deadlock_time += dl_start.elapsed();
                if deadlocks.is_false() {
                    return Ok(deadlocks);
                }
            }
            if pass == 1 {
                ruled_out = Some(deadlocks);
            }
        }
        Ok(deadlocks)
    }
}

/// Run the full heuristic for one schedule. This is the engine behind
/// [`crate::AddConvergence::synthesize`].
///
/// When [`Options::budget`] is set, every symbolic operation is budgeted;
/// a violation aborts the run with [`SynthesisError::ResourceExhausted`]
/// carrying the interrupted [`Phase`] and the partial progress salvaged so
/// far (exact rank layers, cycle-checked recovery groups).
pub fn synthesize(
    protocol: &Protocol,
    invariant: &Expr,
    opts: &Options,
    schedule: Schedule,
) -> Result<Outcome, SynthesisError> {
    synthesize_checkpointed(protocol, invariant, opts, schedule, None)
}

/// [`synthesize`] with an optional checkpoint session. When `ckpt` is
/// `Some`, every committed rank layer and recovery group is journaled
/// before the run proceeds past it, and journaled work found at startup is
/// *replayed* instead of recomputed. Because all heuristic decisions are
/// functions of the (canonical, hash-consed) BDD state, a resumed run
/// retraces the original exactly and the final outcome is bit-identical to
/// an uninterrupted run's.
pub(crate) fn synthesize_checkpointed(
    protocol: &Protocol,
    invariant: &Expr,
    opts: &Options,
    schedule: Schedule,
    mut ckpt: Option<&mut CheckpointSession>,
) -> Result<Outcome, SynthesisError> {
    if !schedule.is_permutation_of(protocol.num_processes()) {
        return Err(SynthesisError::BadSchedule);
    }
    let start = Instant::now();
    let tracer = opts.tracer.clone();
    let mut ctx = SymbolicContext::new(protocol.clone());
    ctx.mgr().set_tracer(tracer.clone());
    if let Some(b) = &opts.budget {
        ctx.set_budget(b);
    }
    let setup_span = tracer.span("phase.setup");
    // Everything before ranking maps a budget violation to `Phase::Setup`
    // with empty partial progress.
    macro_rules! setup {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(cause) => return Err(resource_err(&ctx, Phase::Setup, cause, 0, &[])),
            }
        };
    }
    let i = setup!(ctx.try_compile(invariant));
    if i.is_false() {
        return Err(SynthesisError::EmptyInvariant);
    }
    let mut delta_p = setup!(ctx.try_protocol_relation());
    if !setup!(try_closure_holds(&mut ctx, delta_p, i)) {
        return Err(SynthesisError::NotClosed);
    }
    let not_i = setup!(ctx.try_not_states(i));

    // --- Preprocessing: non-progress cycles already in δ_p | ¬I ---------
    let mut removed_from_p: Vec<GroupDesc> = Vec::new();
    let restricted_p = setup!(ctx.try_restrict_relation(delta_p, not_i));
    if setup!(try_has_cycle(&mut ctx, restricted_p, not_i)) {
        let sccs = setup!(try_scc_decomposition(&mut ctx, restricted_p, not_i, opts.scc));
        let p_groups = groups_of_protocol(protocol);
        let mut keep = Bdd::FALSE;
        for g in &p_groups {
            let rel = setup!(ctx.try_group_relation(&g.clone()));
            let mut cyclic = false;
            for &scc in &sccs {
                let m = ctx.cur_to_primed();
                let scc_primed = setup!(ctx.mgr().try_rename(scc, m));
                let inside = setup!(ctx.mgr().try_and(rel, scc));
                if setup!(ctx.mgr().try_intersects(inside, scc_primed)) {
                    cyclic = true;
                    break;
                }
            }
            if cyclic {
                // The paper's preprocessing exits when a cycle transition
                // has a groupmate in p|I (removal would change δ_p|I).
                let src = setup!(ctx.try_group_source(g));
                if setup!(ctx.mgr().try_intersects(src, i)) {
                    return Err(SynthesisError::CycleUnremovable);
                }
                removed_from_p.push(g.clone());
            } else {
                keep = setup!(ctx.mgr().try_or(keep, rel));
            }
        }
        delta_p = keep;
    }
    let pss_restricted = setup!(ctx.try_restrict_relation(delta_p, not_i));
    let enabled_union = setup!(ctx.try_enabled(delta_p));
    let cands = setup!(CandidateSet::try_build(&mut ctx, i));
    let mut engine = Engine {
        i,
        not_i,
        delta_p,
        pss: delta_p,
        pss_restricted,
        enabled_union,
        rank_bdds: Vec::new(),
        cands,
        cand_index: None,
        added: Vec::new(),
        stats: SynthesisStats::default(),
        opts: opts.clone(),
        ctx,
    };
    // From here on a budget violation carries the engine's partial
    // progress (rank layers so far, groups already added and verified).
    macro_rules! phased {
        ($phase:expr, $e:expr) => {
            match $e {
                Ok(v) => v,
                Err(cause) => {
                    let layered = engine.rank_bdds.len();
                    return Err(resource_err(&engine.ctx, $phase, cause, layered, &engine.added));
                }
            }
        };
    }
    engine.stats.candidates = engine.cands.len();
    // Groups of p itself that qualify as candidates are already present in
    // pss; mark them included once, up front.
    if !engine.delta_p.is_false() {
        for ci in 0..engine.cands.all.len() {
            let rel = engine.cands.all[ci].relation;
            if phased!(Phase::Setup, engine.ctx.mgr().try_implies_holds(rel, engine.delta_p)) {
                engine.cands.all[ci].included = true;
            }
        }
    }

    // --- §IV approximation: ComputeRanks over p_im ----------------------
    // A resuming checkpoint session may hold journaled rank-layer
    // snapshots; load them first (each layer is uniquely determined by
    // `p_im` and `I`, so a replayed prefix continues the very same BFS).
    setup_span.close();
    let ranking_span = tracer.span("phase.ranking");
    let rank_start = Instant::now();
    let (rank_prefix, ranks_replayed) = match ckpt.as_deref_mut() {
        Some(c) => {
            let before = c.warnings().len();
            let loaded = c.load_rank_prefix(&mut engine.ctx);
            for w in &c.warnings()[before..] {
                eprintln!("stsyn: checkpoint warning: {w}");
                tracer.warn("checkpoint.warning", &[("message", Json::from(w.as_str()))]);
            }
            // Continue the crashed run's cumulative counters (gc runs,
            // cache probes, peak live) instead of restarting them with
            // the rebuilt manager.
            if let Some(prior) = c.prior_counters() {
                engine.ctx.mgr().adopt_counters(&prior);
            }
            loaded
        }
        None => (Vec::new(), false),
    };
    let ranks = if ranks_replayed {
        // Complete replay: the journal certifies the layering finished, so
        // `p_im` (only ever used as the ranking relation) is not needed.
        if opts.budget.is_some() {
            let mut roots = engine.cands.roots();
            roots.extend([
                engine.i,
                engine.not_i,
                engine.delta_p,
                engine.pss,
                engine.pss_restricted,
                engine.enabled_union,
            ]);
            roots.extend(rank_prefix.iter().copied());
            engine.ctx.register_roots(&roots);
        }
        let mut ranks_v = vec![i];
        let mut explored = i;
        for &layer in &rank_prefix {
            explored = phased!(Phase::Ranking, engine.ctx.mgr().try_or(explored, layer));
            ranks_v.push(layer);
        }
        let infinite = phased!(Phase::Ranking, engine.ctx.try_not_states(explored));
        RankTable { ranks: ranks_v, explored, infinite }
    } else if opts.engine.is_partitioned() {
        // Partitioned ranking: never materialize the monolithic `p_im`.
        // Its transition set is the kept δ_p groups plus every candidate
        // group, so the per-process clusters are built straight from
        // those descriptors (frameless, with early-quantification
        // schedules); ranking then steps through the clustered preimage.
        // The layers are identical to the monolithic run's.
        let mut pim_descs: Vec<GroupDesc> = groups_of_protocol(protocol)
            .into_iter()
            .filter(|g| !removed_from_p.contains(g))
            .collect();
        pim_descs.extend(engine.cands.all.iter().map(|c| c.desc.clone()));
        let pim_parts = phased!(Phase::Setup, engine.ctx.try_partitioned_relation(&pim_descs));
        if opts.budget.is_some() {
            let mut roots = engine.cands.roots();
            roots.extend([
                engine.i,
                engine.not_i,
                engine.delta_p,
                engine.pss,
                engine.pss_restricted,
                engine.enabled_union,
            ]);
            roots.extend(pim_parts.roots());
            roots.extend(rank_prefix.iter().copied());
            engine.ctx.register_roots(&roots);
        }
        let ranks_result = {
            let mut persist;
            let observer: Option<stsyn_symbolic::ranks::RankLayerObserver<'_>> =
                match ckpt.as_deref_mut() {
                    Some(c) => {
                        persist = |mgr: &stsyn_bdd::Manager, idx: usize, layer: Bdd| {
                            c.observe_rank_layer(mgr, idx, layer)
                        };
                        Some(&mut persist)
                    }
                    None => None,
                };
            try_compute_ranks_parts_resumed(&mut engine.ctx, &pim_parts, i, &rank_prefix, observer)
        };
        if let Some(c) = ckpt.as_deref_mut() {
            if let Some(e) = c.take_error() {
                return Err(SynthesisError::Checkpoint(e));
            }
        }
        match ranks_result {
            Ok(t) => t,
            Err(interrupted) => {
                return Err(resource_err(
                    &engine.ctx,
                    Phase::Ranking,
                    interrupted.cause,
                    interrupted.ranks_so_far.len(),
                    &[],
                ))
            }
        }
    } else {
        let pim = phased!(Phase::Setup, engine.cands.try_pim(&mut engine.ctx, engine.delta_p));
        // `ComputeRanks` hits node-ceiling safe points; every long-lived
        // handle must be registered so graceful-degradation GC preserves
        // it.
        if opts.budget.is_some() {
            let mut roots = engine.cands.roots();
            roots.extend([
                engine.i,
                engine.not_i,
                engine.delta_p,
                engine.pss,
                engine.pss_restricted,
                engine.enabled_union,
                pim,
            ]);
            roots.extend(rank_prefix.iter().copied());
            engine.ctx.register_roots(&roots);
        }
        let ranks_result = {
            let mut persist;
            let observer: Option<stsyn_symbolic::ranks::RankLayerObserver<'_>> =
                match ckpt.as_deref_mut() {
                    Some(c) => {
                        persist = |mgr: &stsyn_bdd::Manager, idx: usize, layer: Bdd| {
                            c.observe_rank_layer(mgr, idx, layer)
                        };
                        Some(&mut persist)
                    }
                    None => None,
                };
            try_compute_ranks_resumed(&mut engine.ctx, pim, i, &rank_prefix, observer)
        };
        if let Some(c) = ckpt.as_deref_mut() {
            if let Some(e) = c.take_error() {
                return Err(SynthesisError::Checkpoint(e));
            }
        }
        match ranks_result {
            Ok(t) => t,
            Err(interrupted) => {
                return Err(resource_err(
                    &engine.ctx,
                    Phase::Ranking,
                    interrupted.cause,
                    interrupted.ranks_so_far.len(),
                    &[],
                ))
            }
        }
    };
    engine.stats.ranking_time = rank_start.elapsed();
    ranking_span.close();
    engine.stats.max_rank = ranks.max_rank();
    if !ranks.complete() {
        let count = engine.ctx.count_states(ranks.infinite);
        return Err(SynthesisError::NoStabilizingVersion { unreachable_states: count });
    }
    if let Some(c) = ckpt.as_deref_mut() {
        if let Err(e) = c.record_ranks_done(ranks.max_rank()) {
            return Err(SynthesisError::Checkpoint(e));
        }
    }
    engine.rank_bdds = ranks.ranks.clone();

    let mut deadlocks = phased!(Phase::Ranking, engine.deadlocks());

    // Like `phased!`, but for the checkpoint-aware step functions: a BDD
    // budget violation still maps to `ResourceExhausted`, while a journal
    // failure surfaces as `SynthesisError::Checkpoint`.
    macro_rules! phased_step {
        ($phase:expr, $e:expr) => {
            match $e {
                Ok(v) => v,
                Err(StepError::Bdd(cause)) => {
                    let layered = engine.rank_bdds.len();
                    return Err(resource_err(&engine.ctx, $phase, cause, layered, &engine.added));
                }
                Err(StepError::Ckpt(e)) => return Err(SynthesisError::Checkpoint(e)),
            }
        };
    }

    // --- Passes 1–3 ------------------------------------------------------
    let mut finished = 0u8;
    if !deadlocks.is_false() {
        let recovery_span = tracer.span("phase.recovery");
        'passes: for pass in 1u8..=3u8 {
            if pass <= 2 {
                for ri in 1..=ranks.max_rank() {
                    let from = phased!(
                        Phase::Recovery { pass },
                        engine.ctx.mgr().try_and(ranks.rank(ri), deadlocks)
                    );
                    if from.is_false() {
                        continue;
                    }
                    let to = ranks.rank(ri - 1);
                    deadlocks = phased_step!(
                        Phase::Recovery { pass },
                        engine.add_convergence(
                            from,
                            to,
                            deadlocks,
                            (pass, ri as u32),
                            &schedule,
                            &mut ckpt
                        )
                    );
                    if deadlocks.is_false() {
                        finished = pass;
                        break 'passes;
                    }
                }
            } else {
                // Pass 3: From = all remaining deadlocks, To = anywhere.
                let to = engine.ctx.all_states();
                deadlocks = phased_step!(
                    Phase::Recovery { pass },
                    engine.add_convergence(
                        deadlocks,
                        to,
                        deadlocks,
                        (pass, 0),
                        &schedule,
                        &mut ckpt
                    )
                );
                if deadlocks.is_false() {
                    finished = pass;
                    break 'passes;
                }
            }
        }
        if !deadlocks.is_false() {
            let remaining = engine.ctx.count_states(deadlocks);
            return Err(SynthesisError::DeadlocksRemain { remaining });
        }
        recovery_span.close();
    }

    engine.stats.finished_in_pass = finished;
    engine.stats.program_nodes = engine.ctx.mgr_ref().node_count(engine.pss);
    engine.stats.peak_live_nodes = engine.ctx.mgr_ref().stats().peak_live_nodes;

    let mut outcome = Outcome {
        ctx: engine.ctx,
        i: engine.i,
        delta_p: engine.delta_p,
        pss: engine.pss,
        added: engine.added,
        removed_from_p,
        stats: engine.stats,
        schedule,
        engine: opts.engine,
    };
    // Soundness backstop (Theorem V.2): the heuristic's output is correct
    // by construction; verify anyway (debug builds) and treat failure as a
    // bug. The verification pass itself runs under the budget.
    #[cfg(debug_assertions)]
    {
        let _verification_span = tracer.span("phase.verification");
        if opts.budget.is_some() {
            let roots = [outcome.pss, outcome.i, outcome.delta_p];
            outcome.ctx.register_roots(&roots);
        }
        match outcome.try_verify_strong() {
            Ok(verified) => {
                assert!(verified, "synthesized protocol failed verification")
            }
            Err(cause) => {
                let layered = outcome.stats.max_rank + 1;
                let added = outcome.added.clone();
                return Err(resource_err(
                    &outcome.ctx,
                    Phase::Verification,
                    cause,
                    layered,
                    &added,
                ));
            }
        }
    }
    outcome.stats.bdd_ticks = outcome.ctx.mgr_ref().ticks_used();
    outcome.stats.total_time = start.elapsed();
    if tracer.level_enabled(TraceLevel::Info) {
        let s = &outcome.stats;
        let m = outcome.ctx.mgr_ref().stats();
        tracer.info(
            "synthesis.stats",
            &[
                ("max_rank", Json::from(s.max_rank as u64)),
                ("candidates", Json::from(s.candidates as u64)),
                ("groups_added", Json::from(s.groups_added as u64)),
                ("finished_in_pass", Json::from(s.finished_in_pass as u64)),
                ("scc_calls", Json::from(s.scc_calls as u64)),
                ("sccs_found", Json::from(s.sccs_found as u64)),
                ("scc_nodes_total", Json::from(s.scc_nodes_total as u64)),
                ("program_nodes", Json::from(s.program_nodes as u64)),
                ("peak_live_nodes", Json::from(s.peak_live_nodes as u64)),
                ("bdd_ticks", Json::from(s.bdd_ticks)),
                ("ranking_secs", Json::Num(s.ranking_secs())),
                ("scc_secs", Json::Num(s.scc_secs())),
                ("total_secs", Json::Num(s.total_secs())),
                ("scan_secs", Json::Num(s.scan_time.as_secs_f64())),
                ("deadlock_secs", Json::Num(s.deadlock_time.as_secs_f64())),
                ("include_secs", Json::Num(s.include_time.as_secs_f64())),
                ("gc_runs", Json::from(m.gc_runs as u64)),
                ("cache_lookups", Json::from(m.cache_lookups)),
                ("cache_hits", Json::from(m.cache_hits)),
            ],
        );
    }
    // Hand the context back unbudgeted: follow-up queries on the outcome
    // (extraction, re-verification) must not trip a stale budget.
    outcome.ctx.clear_budget();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::topology::{ProcessDecl, VarDecl};
    use stsyn_protocol::{ProcIdx, VarIdx};

    fn c() -> Expr {
        Expr::var(VarIdx(0))
    }

    fn one_var(n: u32, actions: Vec<Action>) -> Protocol {
        let vars = vec![VarDecl::new("c", n)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        Protocol::new(vars, procs, actions).unwrap()
    }

    #[test]
    fn synthesizes_recovery_for_empty_protocol() {
        // No actions, I = {c == 0}: heuristic must add recovery from every
        // other state.
        let p = one_var(4, vec![]);
        let i = c().eq(Expr::int(0));
        let mut out = synthesize(&p, &i, &Options::default(), Schedule::identity(1)).unwrap();
        assert!(out.verify_strong());
        assert!(out.preserves_i_behavior());
        assert!(!out.added.is_empty());
        assert!(out.stats.finished_in_pass >= 1);
    }

    #[test]
    fn already_stabilizing_protocol_needs_nothing() {
        // c < 3 → c := c + 1 already converges to c == 3.
        let inc =
            Action::new(ProcIdx(0), c().lt(Expr::int(3)), vec![(VarIdx(0), c().add(Expr::int(1)))]);
        let p = one_var(4, vec![inc]);
        let i = c().eq(Expr::int(3));
        let mut out = synthesize(&p, &i, &Options::default(), Schedule::identity(1)).unwrap();
        assert!(out.added.is_empty());
        assert_eq!(out.stats.finished_in_pass, 0);
        assert!(out.verify_strong());
    }

    #[test]
    fn rejects_unclosed_invariant() {
        // 0 → 1 but I = {0}: not closed.
        let esc = Action::new(ProcIdx(0), c().eq(Expr::int(0)), vec![(VarIdx(0), Expr::int(1))]);
        let p = one_var(2, vec![esc]);
        let i = c().eq(Expr::int(0));
        assert!(matches!(
            synthesize(&p, &i, &Options::default(), Schedule::identity(1)),
            Err(SynthesisError::NotClosed)
        ));
    }

    #[test]
    fn rejects_empty_invariant() {
        let p = one_var(2, vec![]);
        let i = Expr::Bool(false);
        assert!(matches!(
            synthesize(&p, &i, &Options::default(), Schedule::identity(1)),
            Err(SynthesisError::EmptyInvariant)
        ));
    }

    #[test]
    fn rejects_bad_schedule() {
        let p = one_var(2, vec![]);
        let i = c().eq(Expr::int(0));
        assert!(matches!(
            synthesize(&p, &i, &Options::default(), Schedule::identity(3)),
            Err(SynthesisError::BadSchedule)
        ));
    }

    #[test]
    fn impossible_when_variable_unwritable() {
        // Two vars; P0 can only read (not write) `b`, and I pins b == 0:
        // states with b == 1 can never recover (rank ∞).
        let vars = vec![VarDecl::new("a", 2), VarDecl::new("b", 2)];
        let procs =
            vec![ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = Expr::var(VarIdx(1)).eq(Expr::int(0)).and(Expr::var(VarIdx(0)).eq(Expr::int(0)));
        match synthesize(&p, &i, &Options::default(), Schedule::identity(1)) {
            Err(SynthesisError::NoStabilizingVersion { unreachable_states }) => {
                assert_eq!(unreachable_states, 2.0); // the two b == 1 states
            }
            Ok(_) => panic!("expected NoStabilizingVersion, got a success"),
            Err(other) => panic!("expected NoStabilizingVersion, got {other:?}"),
        }
    }

    #[test]
    fn preprocessing_rejects_protected_cycle() {
        // 1 → 2 → 1 is a ¬I cycle; P0 reads/writes everything so each
        // action is a singleton group. Make one cycle group also start in
        // I by... here groups are per-valuation so the cycle groups start
        // only at 1/2. Give the *same group* an I-transition by making I
        // contain state 1: then the 1→2 group starts inside I and the
        // cycle is unremovable.
        let a12 = Action::new(ProcIdx(0), c().eq(Expr::int(1)), vec![(VarIdx(0), Expr::int(2))]);
        let a21 = Action::new(ProcIdx(0), c().eq(Expr::int(2)), vec![(VarIdx(0), Expr::int(1))]);
        let p = one_var(3, vec![a12, a21]);
        // I = {1}: not closed though (1→2 leaves I) — use I = {0} with a
        // self-contained cycle outside I instead and verify removal works,
        // then the protected case via closure... Here: I = {0}.
        let i = c().eq(Expr::int(0));
        // Cycle 1↔2 lies outside I and neither group starts in I, so the
        // preprocessing may *remove* both groups and then add recovery.
        let mut out = synthesize(&p, &i, &Options::default(), Schedule::identity(1)).unwrap();
        assert!(out.verify_strong());
        assert_eq!(out.removed_from_p.len(), 2);
    }

    #[test]
    fn stats_are_populated() {
        let p = one_var(5, vec![]);
        let i = c().eq(Expr::int(2));
        let out = synthesize(&p, &i, &Options::default(), Schedule::identity(1)).unwrap();
        assert!(out.stats.candidates > 0);
        assert!(out.stats.groups_added > 0);
        assert!(out.stats.program_nodes > 0);
        assert!(out.stats.max_rank >= 1);
        assert!(out.stats.total_time >= out.stats.ranking_time);
    }
}
