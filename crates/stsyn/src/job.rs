//! A library-level job entry point: one call from a *job specification*
//! to a finished, verified synthesis run.
//!
//! Both the `stsyn` command-line tool and the `stsyn-serve` job service
//! funnel through [`JobSpec::run`], so a service never has to shell out to
//! the CLI: the specification carries the protocol and invariant (built
//! programmatically or parsed from DSL text via [`JobSpec::from_dsl`]),
//! the synthesis mode, an optional explicit recovery schedule, an optional
//! resource [`Budget`], and an optional checkpoint directory for
//! crash-safe, resumable execution.
//!
//! Errors are split three ways so front-ends can map them to distinct
//! exit codes / wire errors without pattern-matching deep into
//! [`SynthesisError`]:
//!
//! * [`JobError::Spec`] — the specification itself is inconsistent
//!   (e.g. checkpointing a weak-mode job, a schedule that is not a
//!   permutation of the processes),
//! * [`JobError::Input`] — the protocol/invariant was rejected before
//!   synthesis started (parse error, non-boolean invariant, bad
//!   symmetry), and
//! * [`JobError::Synthesis`] — synthesis (or checkpointing, or budget
//!   enforcement) failed after it started.

use crate::heuristic::Outcome;
use crate::problem::{AddConvergence, Options, PartialProgress, Phase, SynthesisError};
use crate::schedule::Schedule;
use std::fmt;
use std::path::PathBuf;
use stsyn_protocol::expr::Expr;
use stsyn_protocol::{dsl, printer, ProcIdx, Protocol};
use stsyn_symbolic::scc::SccAlgorithm;
use stsyn_symbolic::Budget;

/// How convergence is added.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobMode {
    /// Strong convergence with a single recovery schedule (the paper's
    /// main heuristic). The only mode that supports checkpointing.
    #[default]
    Strong,
    /// Weak convergence (sound and complete, Theorem IV.1).
    Weak,
    /// Race all schedule rotations in parallel, first success wins.
    Parallel,
}

/// Checkpointing configuration for a [`JobMode::Strong`] job.
#[derive(Debug, Clone)]
pub struct JobCheckpoint {
    /// Directory holding the write-ahead journal and rank snapshots.
    pub dir: PathBuf,
    /// Resume an existing journal (`true`) or require a fresh directory
    /// (`false`). [`JobCheckpoint::auto`] picks based on what is on disk.
    pub resume: bool,
}

impl JobCheckpoint {
    /// Checkpoint into `dir`, resuming if it already holds a journal —
    /// the mode a restarted service wants for in-flight jobs.
    pub fn auto(dir: PathBuf) -> JobCheckpoint {
        let resume = dir.join(crate::checkpoint::JOURNAL_FILE).exists();
        JobCheckpoint { dir, resume }
    }
}

/// A complete description of one synthesis job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Protocol name (used for reporting and for the emitted `_SS` name).
    pub name: String,
    /// The input protocol `p`.
    pub protocol: Protocol,
    /// The legitimate-state predicate `I`.
    pub invariant: Expr,
    /// Strong / weak / parallel.
    pub mode: JobMode,
    /// Explicit recovery schedule (process indices); `None` uses the
    /// paper's default rotation. Ignored by [`JobMode::Parallel`].
    pub schedule: Option<Vec<usize>>,
    /// Symbolic SCC algorithm for cycle resolution.
    pub scc: SccAlgorithm,
    /// Image/preimage engine: monolithic (default), partitioned, or
    /// saturation. All engines emit byte-identical protocols; see
    /// [`stsyn_symbolic::Engine`].
    pub engine: stsyn_symbolic::Engine,
    /// Add recovery orbit-atomically under ring-rotation symmetry.
    pub symmetric: bool,
    /// Resource budget (node / tick / deadline / cancellation limits).
    pub budget: Option<Budget>,
    /// Crash-safe checkpointing ([`JobMode::Strong`] only).
    pub checkpoint: Option<JobCheckpoint>,
    /// Tracer threaded through the whole pipeline (disabled by default;
    /// see [`stsyn_obs::Tracer`]).
    pub tracer: stsyn_obs::Tracer,
}

/// Why a job could not produce a report.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The job specification is internally inconsistent.
    Spec(String),
    /// The protocol/invariant input was rejected before synthesis.
    Input(String),
    /// Synthesis, verification, budget enforcement or checkpointing
    /// failed after the run started.
    Synthesis(SynthesisError),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Spec(m) => write!(f, "invalid job specification: {m}"),
            JobError::Input(m) => write!(f, "{m}"),
            JobError::Synthesis(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Synthesis(e) => Some(e),
            _ => None,
        }
    }
}

/// Everything a front-end needs to report a finished job.
pub struct JobReport {
    /// The job's protocol name.
    pub name: String,
    /// Was the job weak-mode?
    pub weak: bool,
    /// Verdict of the independent model-checking pass.
    pub verified: bool,
    /// The full synthesis outcome (stats, added groups, symbolic state).
    pub outcome: Outcome,
    /// Name of the emitted stabilizing protocol (`<name>_SS`).
    pub emitted_name: String,
    /// The synthesized protocol, pretty-printed in the DSL — byte-stable
    /// for a given problem/schedule, which is what lets a service diff
    /// resumed runs against uninterrupted ones.
    pub emitted_dsl: String,
}

impl JobSpec {
    /// A strong-mode spec with default knobs.
    pub fn new(name: impl Into<String>, protocol: Protocol, invariant: Expr) -> JobSpec {
        JobSpec {
            name: name.into(),
            protocol,
            invariant,
            mode: JobMode::Strong,
            schedule: None,
            scc: SccAlgorithm::Skeleton,
            engine: stsyn_symbolic::Engine::Monolithic,
            symmetric: false,
            budget: None,
            checkpoint: None,
            tracer: stsyn_obs::Tracer::disabled(),
        }
    }

    /// Build a spec from DSL text (the payload format job services
    /// accept). Parse and validation failures surface as
    /// [`JobError::Input`] with the parser's line information.
    pub fn from_dsl(src: &str) -> Result<JobSpec, JobError> {
        let parsed = dsl::parse(src).map_err(|e| JobError::Input(e.to_string()))?;
        Ok(JobSpec::new(parsed.name, parsed.protocol, parsed.invariant))
    }

    /// Resolve the recovery schedule this spec will run with.
    pub fn resolved_schedule(&self, problem: &AddConvergence) -> Schedule {
        match &self.schedule {
            Some(order) => Schedule::new(order.iter().map(|&i| ProcIdx(i)).collect()),
            None => problem.default_schedule(),
        }
    }

    /// Validate the spec's internal consistency without running it.
    pub fn validate(&self) -> Result<(), JobError> {
        if self.checkpoint.is_some() && self.mode != JobMode::Strong {
            return Err(JobError::Spec(
                "checkpointing applies to strong single-schedule synthesis only".into(),
            ));
        }
        if let Some(order) = &self.schedule {
            let k = self.protocol.num_processes();
            let sched = Schedule::new(order.iter().map(|&i| ProcIdx(i)).collect());
            if !sched.is_permutation_of(k) {
                return Err(JobError::Spec(format!(
                    "schedule {order:?} is not a permutation of the {k} processes"
                )));
            }
        }
        Ok(())
    }

    /// Bundle the spec's protocol and invariant into the Problem III.1
    /// interface (rejecting invalid inputs as [`JobError::Input`]).
    pub fn problem(&self) -> Result<AddConvergence, JobError> {
        AddConvergence::new(self.protocol.clone(), self.invariant.clone())
            .map_err(|e| JobError::Input(e.to_string()))
    }

    /// Run the job end to end: validate, synthesize (checkpointed when
    /// configured), independently re-verify, and pretty-print the result.
    pub fn run(&self) -> Result<JobReport, JobError> {
        self.validate()?;
        let k = self.protocol.num_processes();
        let problem = self.problem()?;
        let symmetry = if self.symmetric {
            match crate::symmetry::Symmetry::ring_rotation(problem.protocol()) {
                Ok(sym) => Some(sym),
                Err(e) => return Err(JobError::Input(format!("symmetry rejected: {e}"))),
            }
        } else {
            None
        };
        let opts = Options {
            scc: self.scc,
            engine: self.engine,
            symmetry,
            budget: self.budget.clone(),
            tracer: self.tracer.clone(),
        };
        let schedule = self.resolved_schedule(&problem);
        let job_span =
            self.tracer.span_with("job", &[("job", stsyn_obs::Json::from(self.name.as_str()))]);

        let result = match self.mode {
            JobMode::Weak => problem.synthesize_weak_with(&opts),
            JobMode::Parallel => problem.synthesize_parallel(&opts, Schedule::all_rotations(k)),
            JobMode::Strong => match &self.checkpoint {
                Some(c) => problem.synthesize_resumable_with(&opts, schedule, &c.dir, c.resume),
                None => problem.synthesize_with(&opts, schedule),
            },
        };
        let mut outcome = result.map_err(JobError::Synthesis)?;

        let verified = match self.mode {
            JobMode::Weak => outcome.try_verify_weak(),
            _ => outcome.try_verify_strong(),
        }
        .map_err(|cause| {
            // The budget died inside the re-verification pass: surface it
            // with the same structure synthesis-phase exhaustion has.
            let partial = PartialProgress {
                ranks_layered: outcome.stats.max_rank,
                groups_added: outcome.added.clone(),
                live_nodes: cause_live_nodes(&cause),
                ticks: outcome.stats.bdd_ticks,
                manager_consistent: true,
            };
            JobError::Synthesis(SynthesisError::ResourceExhausted {
                phase: Phase::Verification,
                cause,
                partial: Box::new(partial),
            })
        })?;

        job_span.close();
        let emitted_name = format!("{}_SS", self.name);
        let pss = outcome.extract_protocol();
        let emitted_dsl = printer::to_dsl(&emitted_name, &pss, &self.invariant);
        Ok(JobReport {
            name: self.name.clone(),
            weak: self.mode == JobMode::Weak,
            verified,
            outcome,
            emitted_name,
            emitted_dsl,
        })
    }
}

fn cause_live_nodes(e: &stsyn_symbolic::BddError) -> usize {
    match e {
        stsyn_symbolic::BddError::BudgetExhausted { live_nodes, .. } => *live_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RAMP: &str = r#"
        protocol Ramp {
          var c : 0..3;
          process P0 reads c writes c { }
          invariant c == 3;
        }
    "#;

    #[test]
    fn dsl_job_runs_and_verifies() {
        let spec = JobSpec::from_dsl(RAMP).unwrap();
        let report = spec.run().unwrap();
        assert!(report.verified);
        assert_eq!(report.name, "Ramp");
        assert!(report.emitted_dsl.starts_with("protocol Ramp_SS"));
        assert!(!report.outcome.added.is_empty());
    }

    #[test]
    fn bad_dsl_is_an_input_error() {
        match JobSpec::from_dsl("protocol Bad {\n  var a @ 0..1;\n}") {
            Err(JobError::Input(m)) => assert!(m.contains("line 2"), "{m}"),
            other => panic!("expected Input error, got {other:?}"),
        }
    }

    #[test]
    fn checkpointed_weak_is_a_spec_error() {
        let mut spec = JobSpec::from_dsl(RAMP).unwrap();
        spec.mode = JobMode::Weak;
        spec.checkpoint = Some(JobCheckpoint { dir: "/tmp/never-used".into(), resume: false });
        assert!(matches!(spec.run(), Err(JobError::Spec(_))));
    }

    #[test]
    fn non_permutation_schedule_is_a_spec_error() {
        let mut spec = JobSpec::from_dsl(RAMP).unwrap();
        spec.schedule = Some(vec![0, 0]);
        assert!(matches!(spec.run(), Err(JobError::Spec(_))));
    }

    #[test]
    fn weak_mode_reports_weak() {
        let mut spec = JobSpec::from_dsl(RAMP).unwrap();
        spec.mode = JobMode::Weak;
        let report = spec.run().unwrap();
        assert!(report.weak && report.verified);
    }

    #[test]
    fn checkpointed_run_resumes_to_identical_output() {
        let dir = std::env::temp_dir().join(format!(
            "stsyn-job-ckpt-{}-{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let mut spec = JobSpec::from_dsl(RAMP).unwrap();
        spec.checkpoint = Some(JobCheckpoint { dir: dir.clone(), resume: false });
        let first = spec.run().unwrap();
        // Auto mode resumes the finished journal and replays to the same
        // bytes.
        spec.checkpoint = Some(JobCheckpoint::auto(dir.clone()));
        assert!(spec.checkpoint.as_ref().unwrap().resume);
        let second = spec.run().unwrap();
        assert_eq!(first.emitted_dsl, second.emitted_dsl);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
