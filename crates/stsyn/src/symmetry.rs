//! Symmetry-enforcing synthesis (§VIII, "Symmetry").
//!
//! The plain heuristic often produces *asymmetric* protocols (the paper
//! observed this on maximal matching), because each process gets a
//! different chance at each deadlock. The paper lists heuristics that
//! enforce symmetry as ongoing work; this module implements the natural
//! one: recovery groups are added **orbit-atomically** — whenever a group
//! is selected for one process, the corresponding group of every other
//! process (under a topology automorphism) is added in the same step, and
//! cycle resolution rejects or accepts whole orbits.
//!
//! A [`Symmetry`] is a generator automorphism: a permutation of processes
//! together with a compatible permutation of variables. For ring-shaped
//! protocols [`Symmetry::ring_rotation`] derives the canonical rotation
//! automatically.

use crate::candidates::CandidateSet;
use std::collections::HashMap;
use stsyn_protocol::group::GroupDesc;
use stsyn_protocol::topology::{ProcIdx, VarIdx};
use stsyn_protocol::Protocol;

/// A generator of a cyclic symmetry group on a protocol: process `j`
/// maps to `proc_map[j]` and variable `v` to `var_map[v]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symmetry {
    proc_map: Vec<usize>,
    var_map: Vec<usize>,
}

/// Why a symmetry specification was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymmetryError {
    /// A map is not a permutation of the right size.
    NotAPermutation,
    /// The variable permutation changes a domain size.
    DomainMismatch,
    /// The process permutation does not carry localities onto localities
    /// (reads/writes are not preserved under the variable permutation).
    TopologyMismatch,
}

impl std::fmt::Display for SymmetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymmetryError::NotAPermutation => write!(f, "map is not a permutation"),
            SymmetryError::DomainMismatch => write!(f, "variable permutation changes domains"),
            SymmetryError::TopologyMismatch => {
                write!(f, "permutation does not preserve the read/write topology")
            }
        }
    }
}

fn is_permutation(map: &[usize]) -> bool {
    let mut seen = vec![false; map.len()];
    map.iter().all(|&m| {
        if m < seen.len() && !seen[m] {
            seen[m] = true;
            true
        } else {
            false
        }
    })
}

impl Symmetry {
    /// Build and validate a symmetry from explicit maps.
    pub fn new(
        protocol: &Protocol,
        proc_map: Vec<usize>,
        var_map: Vec<usize>,
    ) -> Result<Symmetry, SymmetryError> {
        if proc_map.len() != protocol.num_processes()
            || var_map.len() != protocol.num_vars()
            || !is_permutation(&proc_map)
            || !is_permutation(&var_map)
        {
            return Err(SymmetryError::NotAPermutation);
        }
        for (v, &m) in var_map.iter().enumerate() {
            if protocol.vars()[v].domain != protocol.vars()[m].domain {
                return Err(SymmetryError::DomainMismatch);
            }
        }
        // Localities must be carried onto localities.
        for (j, &pj) in proc_map.iter().enumerate() {
            let src = &protocol.processes()[j];
            let dst = &protocol.processes()[pj];
            let mut mapped_reads: Vec<VarIdx> =
                src.reads.iter().map(|r| VarIdx(var_map[r.0])).collect();
            mapped_reads.sort_unstable();
            if mapped_reads != dst.reads {
                return Err(SymmetryError::TopologyMismatch);
            }
            let mut mapped_writes: Vec<VarIdx> =
                src.writes.iter().map(|w| VarIdx(var_map[w.0])).collect();
            mapped_writes.sort_unstable();
            if mapped_writes != dst.writes {
                return Err(SymmetryError::TopologyMismatch);
            }
        }
        Ok(Symmetry { proc_map, var_map })
    }

    /// The canonical rotation `P_j ↦ P_{j+1}`, `v_i ↦ v_{i+1}` for
    /// ring-shaped protocols with one variable per process (matching,
    /// coloring). Fails on topologies the rotation does not preserve.
    pub fn ring_rotation(protocol: &Protocol) -> Result<Symmetry, SymmetryError> {
        let k = protocol.num_processes();
        if protocol.num_vars() != k {
            return Err(SymmetryError::TopologyMismatch);
        }
        let proc_map: Vec<usize> = (0..k).map(|j| (j + 1) % k).collect();
        let var_map: Vec<usize> = (0..k).map(|v| (v + 1) % k).collect();
        Symmetry::new(protocol, proc_map, var_map)
    }

    /// Map one group descriptor under the generator.
    pub fn apply_group(&self, protocol: &Protocol, g: &GroupDesc) -> GroupDesc {
        let j = g.process.0;
        let pj = self.proc_map[j];
        let src_proc = &protocol.processes()[j];
        let dst_proc = &protocol.processes()[pj];
        // pre: value of mapped variable `var_map[r]` equals value of `r`.
        let pre: Vec<u32> = dst_proc
            .reads
            .iter()
            .map(|r_new| {
                let r_old =
                    self.var_map.iter().position(|&m| m == r_new.0).expect("permutation is total");
                let pos =
                    src_proc.reads.iter().position(|r| r.0 == r_old).expect("topology preserved");
                g.pre[pos]
            })
            .collect();
        let post: Vec<u32> = dst_proc
            .writes
            .iter()
            .map(|w_new| {
                let w_old =
                    self.var_map.iter().position(|&m| m == w_new.0).expect("permutation is total");
                let pos =
                    src_proc.writes.iter().position(|w| w.0 == w_old).expect("topology preserved");
                g.post[pos]
            })
            .collect();
        GroupDesc { process: ProcIdx(pj), pre, post }
    }

    /// The full orbit of a group under the cyclic group generated by this
    /// symmetry (the group itself first).
    pub fn orbit(&self, protocol: &Protocol, g: &GroupDesc) -> Vec<GroupDesc> {
        let mut out = vec![g.clone()];
        let mut cur = self.apply_group(protocol, g);
        while &cur != g {
            out.push(cur.clone());
            cur = self.apply_group(protocol, &cur);
        }
        out
    }

    /// Resolve an orbit into candidate indices. Returns `None` when some
    /// orbit member is not a candidate — which happens exactly when the
    /// invariant (or the input protocol) is not symmetric under this
    /// generator, making orbit-atomic addition impossible for this group.
    pub fn orbit_indices(
        &self,
        protocol: &Protocol,
        cands: &CandidateSet,
        index: &HashMap<GroupDesc, usize>,
        ci: usize,
    ) -> Option<Vec<usize>> {
        let g = &cands.all[ci].desc;
        self.orbit(protocol, g).into_iter().map(|member| index.get(&member).copied()).collect()
    }
}

/// Build the descriptor → candidate-index map used for orbit lookups.
pub fn candidate_index(cands: &CandidateSet) -> HashMap<GroupDesc, usize> {
    cands.all.iter().enumerate().map(|(i, c)| (c.desc.clone(), i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_cases::{coloring, matching, token_ring};

    #[test]
    fn ring_rotation_valid_for_coloring_and_matching() {
        let (p, _) = coloring(5);
        assert!(Symmetry::ring_rotation(&p).is_ok());
        let (p, _) = matching(6);
        assert!(Symmetry::ring_rotation(&p).is_ok());
    }

    #[test]
    fn orbit_has_full_length_on_rings() {
        let (p, _) = coloring(5);
        let sym = Symmetry::ring_rotation(&p).unwrap();
        let g = GroupDesc { process: ProcIdx(1), pre: vec![0, 1, 2], post: vec![2] };
        let orbit = sym.orbit(&p, &g);
        assert_eq!(orbit.len(), 5);
        // All orbit members distinct, one per process.
        let procs: std::collections::HashSet<usize> = orbit.iter().map(|g| g.process.0).collect();
        assert_eq!(procs.len(), 5);
        // Applying the generator 5 times returns the original.
        assert_eq!(&orbit[0], &g);
    }

    #[test]
    fn rotation_maps_values_along_the_ring() {
        // Coloring P1 reads {c0, c1, c2}; pre (a, b, c) in sorted-variable
        // order must rotate to P2's reads {c1, c2, c3} with the same
        // values attached to the same *relative* positions.
        let (p, _) = coloring(4);
        let sym = Symmetry::ring_rotation(&p).unwrap();
        let g = GroupDesc { process: ProcIdx(1), pre: vec![7 % 3, 1, 2], post: vec![0] };
        let mapped = sym.apply_group(&p, &g);
        assert_eq!(mapped.process, ProcIdx(2));
        assert_eq!(mapped.pre, g.pre); // sorted reads rotate uniformly
        assert_eq!(mapped.post, g.post);
    }

    #[test]
    fn rotation_wraps_correctly_at_the_seam() {
        // P_{k-1} reads {c0, c_{k-2}, c_{k-1}} (sorted), which is NOT in
        // the same relative order as the interior processes — the value
        // mapping must follow variables, not positions.
        let (p, _) = coloring(4);
        let sym = Symmetry::ring_rotation(&p).unwrap();
        // P2 reads {c1,c2,c3}: pre = (v(c1), v(c2), v(c3)) = (0, 1, 2).
        let g = GroupDesc { process: ProcIdx(2), pre: vec![0, 1, 2], post: vec![0] };
        let mapped = sym.apply_group(&p, &g);
        // P3 reads sorted {c0, c2, c3}; c2→c3 carries value 1, c3→c0
        // carries 2, c1→c2 carries 0. So pre over {c0, c2, c3} = (2, 0, 1).
        assert_eq!(mapped.process, ProcIdx(3));
        assert_eq!(mapped.pre, vec![2, 0, 1]);
    }

    #[test]
    fn token_ring_rotation_rejected() {
        // TR's P0 differs from the followers: the rotation is a valid
        // *topology* automorphism (reads/writes do line up), but the
        // protocol-level symmetry would be wrong — ensure at least the
        // topology validation runs; TR topology is in fact rotation
        // symmetric, so this must succeed at the topology level.
        let (p, _) = token_ring(4, 3);
        assert!(Symmetry::ring_rotation(&p).is_ok());
        // (Protocol-level asymmetry shows up later: orbit members of a
        //  candidate may be missing because S1 is rotation-asymmetric.)
    }

    #[test]
    fn invalid_maps_rejected() {
        let (p, _) = coloring(4);
        assert_eq!(
            Symmetry::new(&p, vec![0, 0, 1, 2], vec![1, 2, 3, 0]).unwrap_err(),
            SymmetryError::NotAPermutation
        );
        // Identity on processes but rotation on variables breaks locality.
        assert_eq!(
            Symmetry::new(&p, vec![0, 1, 2, 3], vec![1, 2, 3, 0]).unwrap_err(),
            SymmetryError::TopologyMismatch
        );
    }
}
