//! Recovery schedules.
//!
//! From an illegitimate state, which process gets the first chance to
//! contribute a recovery transition matters: the heuristic commits to a
//! fixed *recovery schedule* — a permutation of the processes — and tries
//! them in that order inside `Add_Convergence`. Different schedules can
//! yield different stabilizing protocols (or fail where another succeeds),
//! which is why the paper's Fig. 1 runs one synthesizer instance per
//! schedule on separate machines; [`crate::problem::AddConvergence::
//! synthesize_parallel`] runs one per thread instead.

use stsyn_protocol::ProcIdx;

/// A permutation of the protocol's processes used as the recovery order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule(Vec<ProcIdx>);

impl Schedule {
    /// Build a schedule from an explicit process order; must be a
    /// permutation of `0..k` for the protocol it is used with.
    pub fn new(order: Vec<ProcIdx>) -> Self {
        Schedule(order)
    }

    /// The identity schedule `P0, P1, …, P(k-1)`.
    pub fn identity(k: usize) -> Self {
        Schedule((0..k).map(ProcIdx).collect())
    }

    /// The schedule rotated left by `r`: `P_r, P_{r+1}, …, P_{r-1}`.
    /// `rotated(k, 1)` gives the paper's TR schedule `P1, P2, P3, P0`.
    pub fn rotated(k: usize, r: usize) -> Self {
        Schedule((0..k).map(|i| ProcIdx((i + r) % k)).collect())
    }

    /// All `k` rotations, for parallel exploration.
    pub fn all_rotations(k: usize) -> Vec<Schedule> {
        (0..k).map(|r| Self::rotated(k, r)).collect()
    }

    /// The process order.
    pub fn order(&self) -> &[ProcIdx] {
        &self.0
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the schedule empty? (Only for degenerate zero-process protocols.)
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Is this a valid permutation of `0..k`?
    pub fn is_permutation_of(&self, k: usize) -> bool {
        if self.0.len() != k {
            return false;
        }
        let mut seen = vec![false; k];
        for p in &self.0 {
            if p.0 >= k || seen[p.0] {
                return false;
            }
            seen[p.0] = true;
        }
        true
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "P{}", p.0)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_rotation() {
        let id = Schedule::identity(4);
        assert_eq!(id.order(), &[ProcIdx(0), ProcIdx(1), ProcIdx(2), ProcIdx(3)]);
        let rot = Schedule::rotated(4, 1);
        assert_eq!(rot.order(), &[ProcIdx(1), ProcIdx(2), ProcIdx(3), ProcIdx(0)]);
        assert_eq!(Schedule::rotated(4, 0), id);
        assert_eq!(Schedule::rotated(4, 4), id);
    }

    #[test]
    fn all_rotations_are_distinct_permutations() {
        let all = Schedule::all_rotations(5);
        assert_eq!(all.len(), 5);
        for s in &all {
            assert!(s.is_permutation_of(5));
        }
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn permutation_validation() {
        assert!(Schedule::new(vec![ProcIdx(1), ProcIdx(0)]).is_permutation_of(2));
        assert!(!Schedule::new(vec![ProcIdx(0), ProcIdx(0)]).is_permutation_of(2));
        assert!(!Schedule::new(vec![ProcIdx(0)]).is_permutation_of(2));
        assert!(!Schedule::new(vec![ProcIdx(0), ProcIdx(2)]).is_permutation_of(2));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Schedule::rotated(4, 1).to_string(), "(P1, P2, P3, P0)");
    }
}
