//! Weak-stabilization synthesis (Theorem IV.1).
//!
//! `ComputeRanks` is a *sound and complete* decision procedure for weak
//! stabilization: run it on the maximal candidate protocol `p_im`; if no
//! state has rank ∞, `p_im` itself is a weakly stabilizing version of `p`
//! (every state has *some* computation reaching `I`); otherwise no
//! stabilizing version of `p` exists at all.

use crate::candidates::CandidateSet;
use crate::heuristic::{resource_err, Outcome};
use crate::problem::{Options, Phase, SynthesisError};
use crate::schedule::Schedule;
use crate::stats::SynthesisStats;
use std::time::Instant;
use stsyn_protocol::expr::Expr;
use stsyn_protocol::group::{groups_of_protocol, GroupDesc};
use stsyn_protocol::Protocol;
use stsyn_symbolic::check::try_closure_holds;
use stsyn_symbolic::ranks::{try_compute_ranks, try_compute_ranks_parts};
use stsyn_symbolic::SymbolicContext;

/// Produce the weakly stabilizing `p_im`, or prove none exists.
///
/// Honors [`Options::budget`] with the same failure semantics as the
/// strong-stabilization heuristic (setup and ranking phases only — weak
/// synthesis has no recovery passes).
pub fn synthesize_weak(
    protocol: &Protocol,
    invariant: &Expr,
    opts: &Options,
) -> Result<Outcome, SynthesisError> {
    let start = Instant::now();
    let mut ctx = SymbolicContext::new(protocol.clone());
    if let Some(b) = &opts.budget {
        ctx.set_budget(b);
    }
    macro_rules! setup {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(cause) => return Err(resource_err(&ctx, Phase::Setup, cause, 0, &[])),
            }
        };
    }
    let i = setup!(ctx.try_compile(invariant));
    if i.is_false() {
        return Err(SynthesisError::EmptyInvariant);
    }
    let delta_p = setup!(ctx.try_protocol_relation());
    if !setup!(try_closure_holds(&mut ctx, delta_p, i)) {
        return Err(SynthesisError::NotClosed);
    }
    let mut cands = setup!(CandidateSet::try_build(&mut ctx, i));
    let pim = setup!(cands.try_pim(&mut ctx, delta_p));

    if opts.budget.is_some() {
        let mut roots = cands.roots();
        roots.extend([i, delta_p, pim]);
        ctx.register_roots(&roots);
    }
    let rank_start = Instant::now();
    // Under a partitioned engine the ranking (the entire decision
    // procedure) steps through per-process clusters; the monolithic
    // `pim` built above is still the outcome's `p_ss`, but never feeds
    // an `and_exists`. The rank table is identical either way.
    let ranks_result = if opts.engine.is_partitioned() {
        let mut descs: Vec<GroupDesc> = groups_of_protocol(protocol);
        descs.extend(cands.all.iter().map(|c| c.desc.clone()));
        let pim_parts = setup!(ctx.try_partitioned_relation(&descs));
        if opts.budget.is_some() {
            let mut roots = cands.roots();
            roots.extend([i, delta_p, pim]);
            roots.extend(pim_parts.roots());
            ctx.register_roots(&roots);
        }
        try_compute_ranks_parts(&mut ctx, &pim_parts, i)
    } else {
        try_compute_ranks(&mut ctx, pim, i)
    };
    let ranks = match ranks_result {
        Ok(t) => t,
        Err(interrupted) => {
            return Err(resource_err(
                &ctx,
                Phase::Ranking,
                interrupted.cause,
                interrupted.ranks_so_far.len(),
                &[],
            ))
        }
    };
    let ranking_time = rank_start.elapsed();
    if !ranks.complete() {
        let count = ctx.count_states(ranks.infinite);
        return Err(SynthesisError::NoStabilizingVersion { unreachable_states: count });
    }

    // Every candidate not already contained in δ_p counts as added.
    let mut added = Vec::new();
    for c in &mut cands.all {
        c.included = true;
        let subsumed = match ctx.mgr().try_implies_holds(c.relation, delta_p) {
            Ok(v) => v,
            Err(cause) => {
                return Err(resource_err(&ctx, Phase::Ranking, cause, ranks.ranks.len(), &[]))
            }
        };
        if !subsumed {
            added.push(c.desc.clone());
        }
    }
    let stats = SynthesisStats {
        ranking_time,
        total_time: start.elapsed(),
        max_rank: ranks.max_rank(),
        candidates: cands.len(),
        groups_added: added.len(),
        program_nodes: ctx.mgr_ref().node_count(pim),
        peak_live_nodes: ctx.mgr_ref().stats().peak_live_nodes,
        bdd_ticks: ctx.mgr_ref().ticks_used(),
        ..SynthesisStats::default()
    };
    ctx.clear_budget();
    let k = protocol.num_processes();
    Ok(Outcome {
        i,
        delta_p,
        pss: pim,
        added,
        removed_from_p: Vec::new(),
        stats,
        schedule: Schedule::identity(k),
        engine: opts.engine,
        ctx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};

    fn v(i: usize) -> Expr {
        Expr::var(VarIdx(i))
    }

    #[test]
    fn weak_synthesis_of_empty_protocol() {
        let vars = vec![VarDecl::new("a", 4)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = v(0).eq(Expr::int(0));
        let mut out = synthesize_weak(&p, &i, &Options::default()).unwrap();
        assert!(out.verify_weak());
        assert!(out.preserves_i_behavior());
        assert!(!out.added.is_empty());
    }

    #[test]
    fn weak_version_may_not_be_strong() {
        // p_im typically contains ¬I cycles: weak but not strong. With a
        // 3-value variable and I = {0}, p_im has 1↔2 cycles.
        let vars = vec![VarDecl::new("a", 3)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = v(0).eq(Expr::int(0));
        let mut out = synthesize_weak(&p, &i, &Options::default()).unwrap();
        assert!(out.verify_weak());
        assert!(!out.verify_strong()); // cycle 1↔2 exists in p_im
    }

    #[test]
    fn completeness_detects_impossible_instances() {
        // I pins an unwritable variable: Theorem IV.1 says "no stabilizing
        // version exists", weak or strong.
        let vars = vec![VarDecl::new("a", 2), VarDecl::new("b", 2)];
        let procs =
            vec![ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = v(1).eq(Expr::int(0)).and(v(0).eq(Expr::int(0)));
        assert!(matches!(
            synthesize_weak(&p, &i, &Options::default()),
            Err(SynthesisError::NoStabilizingVersion { .. })
        ));
    }

    #[test]
    fn weak_rejects_unclosed() {
        let vars = vec![VarDecl::new("a", 2)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let esc = Action::new(ProcIdx(0), v(0).eq(Expr::int(0)), vec![(VarIdx(0), Expr::int(1))]);
        let p = Protocol::new(vars, procs, vec![esc]).unwrap();
        let i = v(0).eq(Expr::int(0));
        assert!(matches!(
            synthesize_weak(&p, &i, &Options::default()),
            Err(SynthesisError::NotClosed)
        ));
    }
}
