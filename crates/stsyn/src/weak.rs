//! Weak-stabilization synthesis (Theorem IV.1).
//!
//! `ComputeRanks` is a *sound and complete* decision procedure for weak
//! stabilization: run it on the maximal candidate protocol `p_im`; if no
//! state has rank ∞, `p_im` itself is a weakly stabilizing version of `p`
//! (every state has *some* computation reaching `I`); otherwise no
//! stabilizing version of `p` exists at all.

use crate::candidates::CandidateSet;
use crate::heuristic::Outcome;
use crate::problem::SynthesisError;
use crate::schedule::Schedule;
use crate::stats::SynthesisStats;
use stsyn_protocol::expr::Expr;
use stsyn_protocol::Protocol;
use stsyn_symbolic::check::closure_holds;
use stsyn_symbolic::ranks::compute_ranks;
use stsyn_symbolic::SymbolicContext;
use std::time::Instant;

/// Produce the weakly stabilizing `p_im`, or prove none exists.
pub fn synthesize_weak(protocol: &Protocol, invariant: &Expr) -> Result<Outcome, SynthesisError> {
    let start = Instant::now();
    let mut ctx = SymbolicContext::new(protocol.clone());
    let i = ctx.compile(invariant);
    if i.is_false() {
        return Err(SynthesisError::EmptyInvariant);
    }
    let delta_p = ctx.protocol_relation();
    if !closure_holds(&mut ctx, delta_p, i) {
        return Err(SynthesisError::NotClosed);
    }
    let mut cands = CandidateSet::build(&mut ctx, i);
    let pim = cands.pim(&mut ctx, delta_p);

    let rank_start = Instant::now();
    let ranks = compute_ranks(&mut ctx, pim, i);
    let ranking_time = rank_start.elapsed();
    if !ranks.complete() {
        let count = ctx.count_states(ranks.infinite);
        return Err(SynthesisError::NoStabilizingVersion { unreachable_states: count });
    }

    // Every candidate not already contained in δ_p counts as added.
    let mut added = Vec::new();
    for c in &mut cands.all {
        c.included = true;
        if !ctx.mgr().implies_holds(c.relation, delta_p) {
            added.push(c.desc.clone());
        }
    }
    let stats = SynthesisStats {
        ranking_time,
        total_time: start.elapsed(),
        max_rank: ranks.max_rank(),
        candidates: cands.len(),
        groups_added: added.len(),
        program_nodes: ctx.mgr_ref().node_count(pim),
        peak_live_nodes: ctx.mgr_ref().stats().peak_live_nodes,
        ..SynthesisStats::default()
    };
    let k = protocol.num_processes();
    Ok(Outcome {
        i,
        delta_p,
        pss: pim,
        added,
        removed_from_p: Vec::new(),
        stats,
        schedule: Schedule::identity(k),
        ctx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};

    fn v(i: usize) -> Expr {
        Expr::var(VarIdx(i))
    }

    #[test]
    fn weak_synthesis_of_empty_protocol() {
        let vars = vec![VarDecl::new("a", 4)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = v(0).eq(Expr::int(0));
        let mut out = synthesize_weak(&p, &i).unwrap();
        assert!(out.verify_weak());
        assert!(out.preserves_i_behavior());
        assert!(!out.added.is_empty());
    }

    #[test]
    fn weak_version_may_not_be_strong() {
        // p_im typically contains ¬I cycles: weak but not strong. With a
        // 3-value variable and I = {0}, p_im has 1↔2 cycles.
        let vars = vec![VarDecl::new("a", 3)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = v(0).eq(Expr::int(0));
        let mut out = synthesize_weak(&p, &i).unwrap();
        assert!(out.verify_weak());
        assert!(!out.verify_strong()); // cycle 1↔2 exists in p_im
    }

    #[test]
    fn completeness_detects_impossible_instances() {
        // I pins an unwritable variable: Theorem IV.1 says "no stabilizing
        // version exists", weak or strong.
        let vars = vec![VarDecl::new("a", 2), VarDecl::new("b", 2)];
        let procs = vec![ProcessDecl::new(
            "P0",
            vec![VarIdx(0), VarIdx(1)],
            vec![VarIdx(0)],
        )
        .unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = v(1).eq(Expr::int(0)).and(v(0).eq(Expr::int(0)));
        assert!(matches!(
            synthesize_weak(&p, &i),
            Err(SynthesisError::NoStabilizingVersion { .. })
        ));
    }

    #[test]
    fn weak_rejects_unclosed() {
        let vars = vec![VarDecl::new("a", 2)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let esc = Action::new(ProcIdx(0), v(0).eq(Expr::int(0)), vec![(VarIdx(0), Expr::int(1))]);
        let p = Protocol::new(vars, procs, vec![esc]).unwrap();
        let i = v(0).eq(Expr::int(0));
        assert!(matches!(synthesize_weak(&p, &i), Err(SynthesisError::NotClosed)));
    }
}
