//! Problem III.1 — *Adding Convergence* — as a library interface.
//!
//! Input: a protocol `p`, a state predicate `I` closed in `p`, the desired
//! convergence strength, and the topology (already carried by `p`).
//! Output: `p_ss` with `I` unchanged, `δ_pss|I = δ_p|I`, and `p_ss`
//! converging to `I` — or a diagnosed failure.

use crate::heuristic::{synthesize, Outcome};
use crate::schedule::Schedule;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use stsyn_protocol::expr::{Expr, Ty};
use stsyn_protocol::group::GroupDesc;
use stsyn_protocol::Protocol;
use stsyn_symbolic::scc::SccAlgorithm;
use stsyn_symbolic::{BddError, Budget};

/// Panic message for infallible wrappers around `try_*` operations: when
/// no budget is installed the fallible core cannot fail.
pub(crate) const INFALLIBLE: &str = "budget exhausted inside an infallible synthesis \
     operation (use the budgeted entry points when a budget is installed)";

/// Tunable knobs for a synthesis run.
#[derive(Debug, Clone)]
pub struct Options {
    /// Which symbolic SCC algorithm `Identify_Resolve_Cycles` uses.
    pub scc: SccAlgorithm,
    /// Which image/preimage engine drives ranking and verification:
    /// monolithic (default), partitioned (clustered relational product
    /// with early quantification), or saturation (partitioned, plus
    /// saturation-ordered closure firing). All engines produce
    /// byte-identical protocols; the non-monolithic ones trade a little
    /// bookkeeping for much smaller intermediate BDDs on larger
    /// instances. Included in checkpoint fingerprints (only when
    /// non-default), so a journal is resumed under the engine that wrote
    /// it.
    pub engine: stsyn_symbolic::Engine,
    /// When set, recovery groups are added orbit-atomically under this
    /// topology automorphism, so the synthesized protocol is symmetric by
    /// construction (§VIII "Symmetry"). `None` reproduces the paper's
    /// plain heuristic.
    pub symmetry: Option<crate::symmetry::Symmetry>,
    /// Resource budget (node ceiling, tick count, wall-clock deadline,
    /// cooperative cancellation) enforced throughout the run. `None` runs
    /// unbudgeted; exhaustion surfaces as
    /// [`SynthesisError::ResourceExhausted`] carrying well-formed partial
    /// progress.
    pub budget: Option<Budget>,
    /// Trace sink for the run: phase spans, per-rank frontier sizes,
    /// SCC/GC/reorder events and the final statistics record all flow
    /// through it (see the `stsyn-obs` crate). The default is the
    /// disabled tracer, whose hooks cost one `Option` check. Excluded
    /// from checkpoint fingerprints, so traced and untraced runs share
    /// journals.
    pub tracer: stsyn_obs::Tracer,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scc: SccAlgorithm::Skeleton,
            engine: stsyn_symbolic::Engine::Monolithic,
            symmetry: None,
            budget: None,
            tracer: stsyn_obs::Tracer::disabled(),
        }
    }
}

/// Which stage of the synthesis pipeline a budget violation interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Compilation, closure checking, preprocessing and candidate
    /// enumeration — before any rank was layered.
    Setup,
    /// `ComputeRanks` over the maximal candidate protocol `p_im`.
    Ranking,
    /// One of the three recovery passes of `Add_Convergence`.
    Recovery {
        /// The pass (1–3) that was running.
        pass: u8,
    },
    /// The independent model-checking pass over the synthesized protocol.
    Verification,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Setup => write!(f, "setup"),
            Phase::Ranking => write!(f, "ranking"),
            Phase::Recovery { pass } => write!(f, "recovery pass {pass}"),
            Phase::Verification => write!(f, "verification"),
        }
    }
}

/// Well-formed partial progress salvaged from a budget-interrupted run.
/// The rank prefix is correctly layered (`ranks_layered` backward-BFS
/// layers were completed, each exact) and every group in `groups_added`
/// had passed `Identify_Resolve_Cycles` when the run stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialProgress {
    /// Number of exact rank layers `ComputeRanks` completed (0 when the
    /// run died before or at the start of ranking).
    pub ranks_layered: usize,
    /// Recovery groups already added *and* cycle-checked.
    pub groups_added: Vec<GroupDesc>,
    /// Live BDD nodes in the manager at the moment of interruption.
    pub live_nodes: usize,
    /// BDD operation ticks consumed.
    pub ticks: u64,
    /// Did the manager pass its unique-table/root consistency audit after
    /// the interruption? (Always expected `true`; exposed so harnesses can
    /// assert it.)
    pub manager_consistent: bool,
}

/// Why a synthesis attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The invariant expression is not boolean-typed.
    InvariantNotBool,
    /// The invariant denotes the empty set — nothing to converge to.
    EmptyInvariant,
    /// `I` is not closed in `p` (violates the problem's input condition).
    NotClosed,
    /// Preprocessing found a non-progress cycle in `δ_p | ¬I` whose
    /// participating groups have groupmates originating in `I`; breaking
    /// the cycle would change `δ_p | I`, so the instance is rejected
    /// (paper §V, preprocessing step).
    CycleUnremovable,
    /// `ComputeRanks` found states with rank ∞: by Theorem IV.1 **no**
    /// stabilizing version of `p` exists at all.
    NoStabilizingVersion {
        /// How many states cannot reach `I` under any candidate recovery.
        unreachable_states: f64,
    },
    /// The (incomplete) heuristic could not resolve every deadlock; a
    /// different schedule may still succeed.
    DeadlocksRemain {
        /// Number of unresolved deadlock states after Pass 3.
        remaining: f64,
    },
    /// The supplied schedule is not a permutation of the processes.
    BadSchedule,
    /// The invariant expression is structurally invalid (e.g. a modulo
    /// divisor that is zero or non-constant).
    InvalidExpression(String),
    /// Every schedule tried by a parallel exploration failed; carries the
    /// error of the first schedule.
    AllSchedulesFailed(Box<SynthesisError>),
    /// A parallel synthesis worker panicked (an internal bug, reported
    /// instead of poisoning the whole exploration).
    WorkerPanicked,
    /// The resource budget ran out. Carries the phase that was
    /// interrupted, the underlying BDD-level violation, and well-formed
    /// partial progress.
    ResourceExhausted {
        /// The pipeline stage that was running.
        phase: Phase,
        /// The BDD-level budget violation.
        cause: BddError,
        /// Progress salvaged from the interrupted run.
        partial: Box<PartialProgress>,
    },
    /// A checkpointed run could not open, journal to, or resume from its
    /// checkpoint directory (see [`crate::checkpoint::CheckpointError`]).
    Checkpoint(crate::checkpoint::CheckpointError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvariantNotBool => write!(f, "invariant is not boolean-typed"),
            SynthesisError::EmptyInvariant => write!(f, "invariant denotes the empty set"),
            SynthesisError::NotClosed => {
                write!(f, "I is not closed in p (input condition of Problem III.1)")
            }
            SynthesisError::CycleUnremovable => write!(
                f,
                "δ_p|¬I contains a non-progress cycle whose groups reach into I; cannot break it without changing δ_p|I"
            ),
            SynthesisError::NoStabilizingVersion { unreachable_states } => write!(
                f,
                "no stabilizing version exists: {unreachable_states} states have rank ∞ (Theorem IV.1)"
            ),
            SynthesisError::DeadlocksRemain { remaining } => write!(
                f,
                "heuristic failure: {remaining} deadlock states remain after Pass 3 (try another schedule)"
            ),
            SynthesisError::BadSchedule => {
                write!(f, "schedule is not a permutation of the protocol's processes")
            }
            SynthesisError::InvalidExpression(m) => write!(f, "invalid expression: {m}"),
            SynthesisError::AllSchedulesFailed(first) => {
                write!(f, "every schedule failed; first error: {first}")
            }
            SynthesisError::WorkerPanicked => {
                write!(f, "a parallel synthesis worker panicked (internal error)")
            }
            SynthesisError::ResourceExhausted { phase, cause, partial } => write!(
                f,
                "resource budget exhausted during {phase}: {cause} \
                 ({} rank layers, {} groups added before interruption)",
                partial.ranks_layered,
                partial.groups_added.len()
            ),
            SynthesisError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::ResourceExhausted { cause, .. } => Some(cause),
            SynthesisError::AllSchedulesFailed(first) => Some(&**first),
            SynthesisError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

/// An instance of Problem III.1: protocol plus legitimate-state predicate.
#[derive(Debug, Clone)]
pub struct AddConvergence {
    protocol: Protocol,
    invariant: Expr,
}

impl AddConvergence {
    /// Bundle an instance; the invariant must typecheck as boolean.
    /// (Closure of `I` in `p` is checked symbolically at synthesis time.)
    pub fn new(protocol: Protocol, invariant: Expr) -> Result<Self, SynthesisError> {
        match invariant.typecheck() {
            Ok(Ty::Bool) => {}
            _ => return Err(SynthesisError::InvariantNotBool),
        }
        invariant
            .validate_moduli()
            .map_err(|e| SynthesisError::InvalidExpression(e.to_string()))?;
        Ok(AddConvergence { protocol, invariant })
    }

    /// The protocol `p`.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// The predicate `I`.
    pub fn invariant(&self) -> &Expr {
        &self.invariant
    }

    /// The default recovery schedule `(P1, …, P_{k-1}, P0)` — the order
    /// the paper uses for its running example.
    pub fn default_schedule(&self) -> Schedule {
        let k = self.protocol.num_processes();
        if k == 0 {
            Schedule::identity(0)
        } else {
            Schedule::rotated(k, 1 % k)
        }
    }

    /// Add **strong** convergence with the default schedule.
    pub fn synthesize(&self, opts: &Options) -> Result<Outcome, SynthesisError> {
        self.synthesize_with(opts, self.default_schedule())
    }

    /// Add strong convergence with an explicit recovery schedule.
    pub fn synthesize_with(
        &self,
        opts: &Options,
        schedule: Schedule,
    ) -> Result<Outcome, SynthesisError> {
        synthesize(&self.protocol, &self.invariant, opts, schedule)
    }

    /// Add strong convergence with **crash-safe checkpointing**: the run
    /// write-ahead-journals every committed rank layer and accepted
    /// recovery group into `checkpoint_dir`, and — when the directory
    /// already holds a compatible journal — resumes from it, skipping all
    /// completed work. A resumed run produces a protocol bit-identical to
    /// an uninterrupted one. Uses the default schedule; see
    /// [`AddConvergence::synthesize_resumable_with`] for explicit control.
    pub fn synthesize_resumable(
        &self,
        opts: &Options,
        checkpoint_dir: &std::path::Path,
    ) -> Result<Outcome, SynthesisError> {
        let resume = checkpoint_dir.join(crate::checkpoint::JOURNAL_FILE).exists();
        self.synthesize_resumable_with(opts, self.default_schedule(), checkpoint_dir, resume)
    }

    /// [`AddConvergence::synthesize_resumable`] with an explicit schedule
    /// and resume mode. With `resume = false` the directory must not
    /// already hold a journal ([`crate::checkpoint::CheckpointError::Exists`]
    /// otherwise); with `resume = true` an existing journal is validated
    /// against this problem/schedule/options (the budget is excluded from
    /// the comparison, so a crashed budgeted run can be resumed with a
    /// larger budget or none) and replayed — a corrupt or torn journal
    /// tail degrades to the last valid prefix with a warning. On
    /// [`SynthesisError::ResourceExhausted`] a final checkpoint marker is
    /// journaled before returning, so a follow-up resume picks up exactly
    /// where the budget cut off.
    pub fn synthesize_resumable_with(
        &self,
        opts: &Options,
        schedule: Schedule,
        checkpoint_dir: &std::path::Path,
        resume: bool,
    ) -> Result<Outcome, SynthesisError> {
        let fp = crate::checkpoint::fingerprint(&self.protocol, &self.invariant, opts, &schedule);
        let mut session = if resume {
            crate::checkpoint::CheckpointSession::resume(checkpoint_dir, fp)
        } else {
            crate::checkpoint::CheckpointSession::create(checkpoint_dir, fp)
        }
        .map_err(SynthesisError::Checkpoint)?;
        for w in session.warnings() {
            eprintln!("stsyn: checkpoint warning: {w}");
            opts.tracer
                .warn("checkpoint.warning", &[("message", stsyn_obs::Json::from(w.as_str()))]);
        }
        let result = crate::heuristic::synthesize_checkpointed(
            &self.protocol,
            &self.invariant,
            opts,
            schedule,
            Some(&mut session),
        );
        match &result {
            Ok(_) => session.record_done().map_err(SynthesisError::Checkpoint)?,
            Err(SynthesisError::ResourceExhausted { phase, .. }) => {
                // The final checkpoint: everything committed is already
                // fsync'd; mark the cut so resume knows it was deliberate.
                session.record_cut(phase).map_err(SynthesisError::Checkpoint)?;
            }
            Err(_) => {}
        }
        result
    }

    /// Add **weak** convergence (Theorem IV.1: sound and complete) with
    /// default options.
    pub fn synthesize_weak(&self) -> Result<Outcome, SynthesisError> {
        self.synthesize_weak_with(&Options::default())
    }

    /// Add weak convergence under explicit options (only the budget is
    /// consulted — weak synthesis has no SCC or symmetry knobs).
    pub fn synthesize_weak_with(&self, opts: &Options) -> Result<Outcome, SynthesisError> {
        crate::weak::synthesize_weak(&self.protocol, &self.invariant, opts)
    }

    /// Race several schedules, one per thread (the paper's Fig. 1 runs one
    /// synthesizer instance per schedule on separate machines). Returns
    /// the first success in schedule order, or — when every schedule
    /// fails — `AllSchedulesFailed` carrying the first schedule's error.
    ///
    /// The workers share a cooperative cancellation flag: the first to
    /// succeed cancels the rest, whose `ResourceExhausted(Cancelled)`
    /// results are not counted as failures. A worker panic is contained
    /// and reported as [`SynthesisError::WorkerPanicked`] rather than
    /// aborting the exploration.
    pub fn synthesize_parallel(
        &self,
        opts: &Options,
        schedules: Vec<Schedule>,
    ) -> Result<Outcome, SynthesisError> {
        if schedules.is_empty() {
            return Err(SynthesisError::BadSchedule);
        }
        let cancel = Arc::new(AtomicBool::new(false));
        let results: Vec<Result<Outcome, SynthesisError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = schedules
                .into_iter()
                .map(|sch| {
                    let mut opts = opts.clone();
                    let cancel = Arc::clone(&cancel);
                    opts.budget = Some(
                        opts.budget.take().unwrap_or_default().with_cancel(Arc::clone(&cancel)),
                    );
                    scope.spawn(move || {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            synthesize(&self.protocol, &self.invariant, &opts, sch)
                        }));
                        match r {
                            Ok(Ok(out)) => {
                                // Tell the siblings to stop working.
                                cancel.store(true, Ordering::Relaxed);
                                Ok(out)
                            }
                            Ok(Err(e)) => Err(e),
                            Err(_) => Err(SynthesisError::WorkerPanicked),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(Err(SynthesisError::WorkerPanicked)))
                .collect()
        });
        let mut first_err: Option<SynthesisError> = None;
        for r in results {
            match r {
                Ok(out) => return Ok(out),
                // A worker cancelled because a sibling won is not a
                // failure of its schedule; skip it when picking the error
                // to report.
                Err(SynthesisError::ResourceExhausted { cause, .. })
                    if cause.resource() == stsyn_symbolic::Resource::Cancelled => {}
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        // Every schedule failed; all-cancelled without a success cannot
        // happen (only a success sets the flag), but fall back gracefully.
        Err(SynthesisError::AllSchedulesFailed(Box::new(
            first_err.unwrap_or(SynthesisError::WorkerPanicked),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};

    fn v(i: usize) -> Expr {
        Expr::var(VarIdx(i))
    }

    #[test]
    fn rejects_integer_invariant() {
        let vars = vec![VarDecl::new("a", 2)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        assert!(matches!(
            AddConvergence::new(p, Expr::int(1)),
            Err(SynthesisError::InvariantNotBool)
        ));
    }

    #[test]
    fn default_schedule_rotates() {
        let vars: Vec<VarDecl> = (0..3).map(|i| VarDecl::new(format!("x{i}"), 2)).collect();
        let procs: Vec<ProcessDecl> = (0..3)
            .map(|j| ProcessDecl::new(format!("P{j}"), vec![VarIdx(j)], vec![VarIdx(j)]).unwrap())
            .collect();
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let prob = AddConvergence::new(p, Expr::Bool(true)).unwrap();
        assert_eq!(prob.default_schedule(), Schedule::rotated(3, 1));
    }

    #[test]
    fn parallel_synthesis_returns_a_success() {
        // Two independent bits, I = both zero; any schedule works.
        let vars = vec![VarDecl::new("a", 2), VarDecl::new("b", 2)];
        let procs = vec![
            ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap(),
            ProcessDecl::new("P1", vec![VarIdx(1)], vec![VarIdx(1)]).unwrap(),
        ];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = v(0).eq(Expr::int(0)).and(v(1).eq(Expr::int(0)));
        let prob = AddConvergence::new(p, i).unwrap();
        let mut out =
            prob.synthesize_parallel(&Options::default(), Schedule::all_rotations(2)).unwrap();
        assert!(out.verify_strong());
    }

    #[test]
    fn unremovable_cycle_is_rejected() {
        // P0 reads/writes only `a`; `b` is readable by nobody's writes…
        // Action: toggle a unconditionally. Its two groups each cover both
        // values of b. I = {b == 0} is closed (b never written). ¬I has
        // the cycle (0,1) ↔ (1,1) whose groups also act inside I.
        let vars = vec![VarDecl::new("a", 2), VarDecl::new("b", 2)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let toggle =
            Action::new(ProcIdx(0), Expr::Bool(true), vec![(VarIdx(0), Expr::int(1).sub(v(0)))]);
        let p = Protocol::new(vars, procs, vec![toggle]).unwrap();
        let i = v(1).eq(Expr::int(0));
        let prob = AddConvergence::new(p, i).unwrap();
        assert!(matches!(
            prob.synthesize(&Options::default()),
            Err(SynthesisError::CycleUnremovable)
        ));
    }

    #[test]
    fn all_schedules_failed_propagates_first_error() {
        // Unwritable variable pinned by I: every schedule fails with
        // NoStabilizingVersion.
        let vars = vec![VarDecl::new("a", 2), VarDecl::new("b", 2)];
        let procs = vec![
            ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap(),
            ProcessDecl::new("P1", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap(),
        ];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = v(1).eq(Expr::int(0)).and(v(0).eq(Expr::int(0)));
        let prob = AddConvergence::new(p, i).unwrap();
        match prob.synthesize_parallel(&Options::default(), Schedule::all_rotations(2)) {
            Err(SynthesisError::AllSchedulesFailed(inner)) => {
                assert!(matches!(*inner, SynthesisError::NoStabilizingVersion { .. }));
            }
            other => panic!("expected AllSchedulesFailed, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(SynthesisError::NotClosed.to_string().contains("closed"));
        assert!(SynthesisError::NoStabilizingVersion { unreachable_states: 3.0 }
            .to_string()
            .contains("Theorem IV.1"));
        assert!(SynthesisError::DeadlocksRemain { remaining: 2.0 }
            .to_string()
            .contains("schedule"));
    }
}
