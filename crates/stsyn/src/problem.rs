//! Problem III.1 — *Adding Convergence* — as a library interface.
//!
//! Input: a protocol `p`, a state predicate `I` closed in `p`, the desired
//! convergence strength, and the topology (already carried by `p`).
//! Output: `p_ss` with `I` unchanged, `δ_pss|I = δ_p|I`, and `p_ss`
//! converging to `I` — or a diagnosed failure.

use crate::heuristic::{synthesize, Outcome};
use crate::schedule::Schedule;
use stsyn_protocol::expr::{Expr, Ty};
use stsyn_protocol::Protocol;
use stsyn_symbolic::scc::SccAlgorithm;
use std::fmt;

/// Tunable knobs for a synthesis run.
#[derive(Debug, Clone)]
pub struct Options {
    /// Which symbolic SCC algorithm `Identify_Resolve_Cycles` uses.
    pub scc: SccAlgorithm,
    /// When set, recovery groups are added orbit-atomically under this
    /// topology automorphism, so the synthesized protocol is symmetric by
    /// construction (§VIII "Symmetry"). `None` reproduces the paper's
    /// plain heuristic.
    pub symmetry: Option<crate::symmetry::Symmetry>,
}

impl Default for Options {
    fn default() -> Self {
        Options { scc: SccAlgorithm::Skeleton, symmetry: None }
    }
}

/// Why a synthesis attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The invariant expression is not boolean-typed.
    InvariantNotBool,
    /// The invariant denotes the empty set — nothing to converge to.
    EmptyInvariant,
    /// `I` is not closed in `p` (violates the problem's input condition).
    NotClosed,
    /// Preprocessing found a non-progress cycle in `δ_p | ¬I` whose
    /// participating groups have groupmates originating in `I`; breaking
    /// the cycle would change `δ_p | I`, so the instance is rejected
    /// (paper §V, preprocessing step).
    CycleUnremovable,
    /// `ComputeRanks` found states with rank ∞: by Theorem IV.1 **no**
    /// stabilizing version of `p` exists at all.
    NoStabilizingVersion {
        /// How many states cannot reach `I` under any candidate recovery.
        unreachable_states: f64,
    },
    /// The (incomplete) heuristic could not resolve every deadlock; a
    /// different schedule may still succeed.
    DeadlocksRemain {
        /// Number of unresolved deadlock states after Pass 3.
        remaining: f64,
    },
    /// The supplied schedule is not a permutation of the processes.
    BadSchedule,
    /// Every schedule tried by a parallel exploration failed; carries the
    /// error of the first schedule.
    AllSchedulesFailed(Box<SynthesisError>),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvariantNotBool => write!(f, "invariant is not boolean-typed"),
            SynthesisError::EmptyInvariant => write!(f, "invariant denotes the empty set"),
            SynthesisError::NotClosed => {
                write!(f, "I is not closed in p (input condition of Problem III.1)")
            }
            SynthesisError::CycleUnremovable => write!(
                f,
                "δ_p|¬I contains a non-progress cycle whose groups reach into I; cannot break it without changing δ_p|I"
            ),
            SynthesisError::NoStabilizingVersion { unreachable_states } => write!(
                f,
                "no stabilizing version exists: {unreachable_states} states have rank ∞ (Theorem IV.1)"
            ),
            SynthesisError::DeadlocksRemain { remaining } => write!(
                f,
                "heuristic failure: {remaining} deadlock states remain after Pass 3 (try another schedule)"
            ),
            SynthesisError::BadSchedule => {
                write!(f, "schedule is not a permutation of the protocol's processes")
            }
            SynthesisError::AllSchedulesFailed(first) => {
                write!(f, "every schedule failed; first error: {first}")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// An instance of Problem III.1: protocol plus legitimate-state predicate.
#[derive(Debug, Clone)]
pub struct AddConvergence {
    protocol: Protocol,
    invariant: Expr,
}

impl AddConvergence {
    /// Bundle an instance; the invariant must typecheck as boolean.
    /// (Closure of `I` in `p` is checked symbolically at synthesis time.)
    pub fn new(protocol: Protocol, invariant: Expr) -> Result<Self, SynthesisError> {
        match invariant.typecheck() {
            Ok(Ty::Bool) => Ok(AddConvergence { protocol, invariant }),
            _ => Err(SynthesisError::InvariantNotBool),
        }
    }

    /// The protocol `p`.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// The predicate `I`.
    pub fn invariant(&self) -> &Expr {
        &self.invariant
    }

    /// The default recovery schedule `(P1, …, P_{k-1}, P0)` — the order
    /// the paper uses for its running example.
    pub fn default_schedule(&self) -> Schedule {
        let k = self.protocol.num_processes();
        if k == 0 {
            Schedule::identity(0)
        } else {
            Schedule::rotated(k, 1 % k)
        }
    }

    /// Add **strong** convergence with the default schedule.
    pub fn synthesize(&self, opts: &Options) -> Result<Outcome, SynthesisError> {
        self.synthesize_with(opts, self.default_schedule())
    }

    /// Add strong convergence with an explicit recovery schedule.
    pub fn synthesize_with(
        &self,
        opts: &Options,
        schedule: Schedule,
    ) -> Result<Outcome, SynthesisError> {
        synthesize(&self.protocol, &self.invariant, opts, schedule)
    }

    /// Add **weak** convergence (Theorem IV.1: sound and complete).
    pub fn synthesize_weak(&self) -> Result<Outcome, SynthesisError> {
        crate::weak::synthesize_weak(&self.protocol, &self.invariant)
    }

    /// Race several schedules, one per thread (the paper's Fig. 1 runs one
    /// synthesizer instance per schedule on separate machines). Returns
    /// the first success in schedule order, or — when every schedule
    /// fails — `AllSchedulesFailed` carrying the first schedule's error.
    pub fn synthesize_parallel(
        &self,
        opts: &Options,
        schedules: Vec<Schedule>,
    ) -> Result<Outcome, SynthesisError> {
        assert!(!schedules.is_empty(), "need at least one schedule");
        let results: Vec<Result<Outcome, SynthesisError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = schedules
                .into_iter()
                .map(|sch| {
                    let opts = opts.clone();
                    scope.spawn(move || synthesize(&self.protocol, &self.invariant, &opts, sch))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("synthesis thread panicked")).collect()
        });
        let mut first_err: Option<SynthesisError> = None;
        for r in results {
            match r {
                Ok(out) => return Ok(out),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        Err(SynthesisError::AllSchedulesFailed(Box::new(first_err.unwrap())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};

    fn v(i: usize) -> Expr {
        Expr::var(VarIdx(i))
    }

    #[test]
    fn rejects_integer_invariant() {
        let vars = vec![VarDecl::new("a", 2)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        assert!(matches!(
            AddConvergence::new(p, Expr::int(1)),
            Err(SynthesisError::InvariantNotBool)
        ));
    }

    #[test]
    fn default_schedule_rotates() {
        let vars: Vec<VarDecl> = (0..3).map(|i| VarDecl::new(format!("x{i}"), 2)).collect();
        let procs: Vec<ProcessDecl> = (0..3)
            .map(|j| ProcessDecl::new(format!("P{j}"), vec![VarIdx(j)], vec![VarIdx(j)]).unwrap())
            .collect();
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let prob = AddConvergence::new(p, Expr::Bool(true)).unwrap();
        assert_eq!(prob.default_schedule(), Schedule::rotated(3, 1));
    }

    #[test]
    fn parallel_synthesis_returns_a_success() {
        // Two independent bits, I = both zero; any schedule works.
        let vars = vec![VarDecl::new("a", 2), VarDecl::new("b", 2)];
        let procs = vec![
            ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap(),
            ProcessDecl::new("P1", vec![VarIdx(1)], vec![VarIdx(1)]).unwrap(),
        ];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = v(0).eq(Expr::int(0)).and(v(1).eq(Expr::int(0)));
        let prob = AddConvergence::new(p, i).unwrap();
        let mut out = prob
            .synthesize_parallel(&Options::default(), Schedule::all_rotations(2))
            .unwrap();
        assert!(out.verify_strong());
    }

    #[test]
    fn unremovable_cycle_is_rejected() {
        // P0 reads/writes only `a`; `b` is readable by nobody's writes…
        // Action: toggle a unconditionally. Its two groups each cover both
        // values of b. I = {b == 0} is closed (b never written). ¬I has
        // the cycle (0,1) ↔ (1,1) whose groups also act inside I.
        let vars = vec![VarDecl::new("a", 2), VarDecl::new("b", 2)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let toggle = Action::new(
            ProcIdx(0),
            Expr::Bool(true),
            vec![(VarIdx(0), Expr::int(1).sub(v(0)))],
        );
        let p = Protocol::new(vars, procs, vec![toggle]).unwrap();
        let i = v(1).eq(Expr::int(0));
        let prob = AddConvergence::new(p, i).unwrap();
        assert!(matches!(
            prob.synthesize(&Options::default()),
            Err(SynthesisError::CycleUnremovable)
        ));
    }

    #[test]
    fn all_schedules_failed_propagates_first_error() {
        // Unwritable variable pinned by I: every schedule fails with
        // NoStabilizingVersion.
        let vars = vec![VarDecl::new("a", 2), VarDecl::new("b", 2)];
        let procs = vec![
            ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap(),
            ProcessDecl::new("P1", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap(),
        ];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = v(1).eq(Expr::int(0)).and(v(0).eq(Expr::int(0)));
        let prob = AddConvergence::new(p, i).unwrap();
        match prob.synthesize_parallel(&Options::default(), Schedule::all_rotations(2)) {
            Err(SynthesisError::AllSchedulesFailed(inner)) => {
                assert!(matches!(*inner, SynthesisError::NoStabilizingVersion { .. }));
            }
            other => panic!("expected AllSchedulesFailed, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(SynthesisError::NotClosed.to_string().contains("closed"));
        assert!(SynthesisError::NoStabilizingVersion { unreachable_states: 3.0 }
            .to_string()
            .contains("Theorem IV.1"));
        assert!(SynthesisError::DeadlocksRemain { remaining: 2.0 }
            .to_string()
            .contains("schedule"));
    }
}
