//! Local-correctability analysis (the paper's Fig. 5 case-study table).
//!
//! §VII explains the scalability gap between the coloring and matching
//! protocols by *local correctability*: coloring is locally correctable
//! (each process can establish its local constraint without invalidating
//! its neighbours'), matching / token ring / two-ring are not. This module
//! makes that notion checkable:
//!
//! 1. **Local decomposition** — project `I` onto each process's readable
//!    variables and test whether the conjunction of the projections equals
//!    `I`. Token-ring-style invariants (global token counting) fail here:
//!    the conjunction admits multi-token states.
//! 2. **Greedy correctability** — with a decomposition in hand, check that
//!    from every state, every process whose local conjunct is violated has
//!    a write that establishes it without falsifying any currently-true
//!    conjunct. If so, greedy local repair always makes progress (the
//!    number of satisfied conjuncts strictly increases), so the protocol
//!    is locally correctable.
//!
//! Both checks run on the explicit engine — the table uses small instances.

use std::collections::HashSet;
use stsyn_protocol::expr::Expr;
use stsyn_protocol::state::State;
use stsyn_protocol::Protocol;

/// Verdict of the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalCorrectability {
    /// `I` decomposes into local conjuncts and greedy local repair always
    /// progresses.
    Yes,
    /// `I` admits no conjunctive decomposition over the processes'
    /// localities (the projections' conjunction is strictly weaker).
    NoDecomposition,
    /// A decomposition exists, but some violated local conjunct cannot be
    /// repaired without breaking a neighbour's (the matching situation).
    NotCorrectable,
}

impl std::fmt::Display for LocalCorrectability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalCorrectability::Yes => write!(f, "Yes"),
            LocalCorrectability::NoDecomposition => {
                write!(f, "No (invariant is not locally decomposable)")
            }
            LocalCorrectability::NotCorrectable => write!(f, "No (local repairs interfere)"),
        }
    }
}

/// Projection of `I` onto one process's readable variables: the set of
/// readable valuations that occur in some `I`-state.
fn projection(protocol: &Protocol, invariant: &Expr, proc: usize) -> HashSet<Vec<u32>> {
    let reads = &protocol.processes()[proc].reads;
    let mut out = HashSet::new();
    for s in protocol.space().states() {
        if invariant.holds(&s) {
            out.insert(reads.iter().map(|r| s[r.0]).collect());
        }
    }
    out
}

/// Run the analysis. Exponential in `|S_p|` — intended for the small
/// instances of the case-study table.
pub fn local_correctability(protocol: &Protocol, invariant: &Expr) -> LocalCorrectability {
    let k = protocol.num_processes();
    let projections: Vec<HashSet<Vec<u32>>> =
        (0..k).map(|j| projection(protocol, invariant, j)).collect();
    let holds_locally = |j: usize, s: &State| -> bool {
        let reads = &protocol.processes()[j].reads;
        let val: Vec<u32> = reads.iter().map(|r| s[r.0]).collect();
        projections[j].contains(&val)
    };

    // 1. Decomposition: ∧ proj_j == I ?
    for s in protocol.space().states() {
        let conj = (0..k).all(|j| holds_locally(j, &s));
        if conj != invariant.holds(&s) {
            return LocalCorrectability::NoDecomposition;
        }
    }

    // 2. Greedy repair: every violated conjunct has a non-interfering fix.
    let space = protocol.space();
    for s in space.states() {
        for j in 0..k {
            if holds_locally(j, &s) {
                continue;
            }
            // Try every write valuation of P_j.
            let writes: Vec<usize> = protocol.processes()[j].writes.iter().map(|w| w.0).collect();
            let mut fixable = false;
            'writes: for wval in space.valuations(&writes) {
                let mut s2 = s.clone();
                for (pos, &wi) in writes.iter().enumerate() {
                    s2[wi] = wval[pos];
                }
                if !holds_locally(j, &s2) {
                    continue;
                }
                for other in 0..k {
                    if other != j && holds_locally(other, &s) && !holds_locally(other, &s2) {
                        continue 'writes; // broke a neighbour
                    }
                }
                fixable = true;
                break;
            }
            if !fixable {
                return LocalCorrectability::NotCorrectable;
            }
        }
    }
    LocalCorrectability::Yes
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::topology::{ProcessDecl, VarDecl, VarIdx};

    fn v(i: usize) -> Expr {
        Expr::var(VarIdx(i))
    }

    /// A 4-process coloring ring, domain 3 — locally correctable.
    fn coloring4() -> (Protocol, Expr) {
        let k = 4usize;
        let vars: Vec<VarDecl> = (0..k).map(|i| VarDecl::new(format!("c{i}"), 3)).collect();
        let procs: Vec<ProcessDecl> = (0..k)
            .map(|j| {
                let left = (j + k - 1) % k;
                let right = (j + 1) % k;
                ProcessDecl::new(
                    format!("P{j}"),
                    vec![VarIdx(left), VarIdx(j), VarIdx(right)],
                    vec![VarIdx(j)],
                )
                .unwrap()
            })
            .collect();
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = Expr::conj((0..k).map(|j| v((j + k - 1) % k).ne(v(j))).collect());
        (p, i)
    }

    /// A 4-process token ring (Dijkstra), domain 3 — not decomposable.
    fn token_ring4() -> (Protocol, Expr) {
        let k = 4usize;
        let vars: Vec<VarDecl> = (0..k).map(|i| VarDecl::new(format!("x{i}"), 3)).collect();
        let procs: Vec<ProcessDecl> = (0..k)
            .map(|j| {
                let prev = (j + k - 1) % k;
                ProcessDecl::new(format!("P{j}"), vec![VarIdx(prev), VarIdx(j)], vec![VarIdx(j)])
                    .unwrap()
            })
            .collect();
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        // S1: exactly one token.
        let token = |j: usize| -> Expr {
            if j == 0 {
                v(0).eq(v(3))
            } else {
                v(j).add(Expr::int(1)).modulo(Expr::int(3)).eq(v(j - 1))
            }
        };
        let mut disj = Vec::new();
        for holder in 0..k {
            let mut conj = Vec::new();
            for j in 0..k {
                let t = token(j);
                conj.push(if j == holder { t } else { t.not() });
            }
            disj.push(Expr::conj(conj));
        }
        (p, Expr::disj(disj))
    }

    #[test]
    fn coloring_is_locally_correctable() {
        let (p, i) = coloring4();
        assert_eq!(local_correctability(&p, &i), LocalCorrectability::Yes);
    }

    #[test]
    fn token_ring_is_not_decomposable() {
        let (p, i) = token_ring4();
        assert_eq!(local_correctability(&p, &i), LocalCorrectability::NoDecomposition);
    }

    #[test]
    fn interfering_repairs_detected() {
        // Two processes sharing both variables; I = (a == b) ∧ (a != 1).
        // P0 writes a, P1 writes b; both read both. Projections decompose
        // (each process sees the whole state). Now craft interference:
        // actually with full visibility the greedy check reduces to
        // whether each process alone can reach I's projection — from
        // (1, 0): P0 can set a := 0 (fixes everything). Use a tighter
        // invariant instead: I = (a == b): always fixable. To exhibit
        // NotCorrectable, give P0 and P1 each only their own variable:
        // I = (a == b) is then *not decomposable* (each projection allows
        // everything)… so NotCorrectable needs partial overlap: a 2-ring
        // matching-like invariant below.
        let vars =
            vec![VarDecl::with_names("m0", &["l", "r"]), VarDecl::with_names("m1", &["l", "r"])];
        let procs = vec![
            ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap(),
            ProcessDecl::new("P1", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(1)]).unwrap(),
        ];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        // I = (m0 == l ⇔ m1 == l): the two "disagree" states are
        // legitimate... choose I = m0 != m1. From (l,l): P0 can flip to
        // (r,l) ∈ I — fine. Both projections are the full I relation, and
        // every violated state has a one-write fix, so: Yes.
        let i = v(0).ne(v(1));
        assert_eq!(local_correctability(&p, &i), LocalCorrectability::Yes);
        // Whereas I = (m0 == l) ∧ (m1 == l) ∧ extra coupling that
        // penalizes lone fixes cannot be expressed with 2 binary vars; the
        // genuine NotCorrectable case is exercised by the matching case
        // study in the integration tests.
    }

    #[test]
    fn trivial_invariant_is_correctable() {
        let (p, _) = coloring4();
        assert_eq!(local_correctability(&p, &Expr::Bool(true)), LocalCorrectability::Yes);
    }
}
