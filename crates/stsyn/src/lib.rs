//! # stsyn-core — automated addition of convergence
//!
//! The paper's primary contribution (Ebnenasir & Farahat, IPDPS 2011): a
//! lightweight formal method that takes a *non-stabilizing* protocol `p`,
//! a closed legitimate-state predicate `I` and the read/write topology, and
//! automatically produces a **self-stabilizing** version `p_ss` such that
//!
//! 1. `I` is unchanged,
//! 2. `p_ss | I = p | I` (no interference with fault-free behaviour), and
//! 3. `p_ss` strongly (or weakly) converges to `I`
//!
//! — Problem III.1. The solution is *correct by construction*, and this
//! implementation re-verifies every output with an independent symbolic
//! model-checking pass.
//!
//! ## Pipeline
//!
//! * [`problem`] — the Problem III.1 interface ([`AddConvergence`]) and
//!   result/error types.
//! * [`candidates`] — the candidate recovery groups: all transition groups
//!   whose every transition originates outside `I` (constraint C1), and
//!   the maximal candidate protocol `p_im` of §IV.
//! * [`heuristic`] — the three-pass synthesis heuristic of §V
//!   (`Add_Convergence` / `Add_Recovery` / `Identify_Resolve_Cycles`,
//!   Fig. 3), guided by the rank layering of `ComputeRanks` (Fig. 2).
//! * [`weak`] — sound **and complete** synthesis of weakly stabilizing
//!   protocols (Theorem IV.1).
//! * [`schedule`] — recovery schedules, plus parallel exploration of
//!   several schedules (the paper's Fig. 1 runs one instance per schedule
//!   per machine; we run one per thread).
//! * [`extract`] — turning the added transition groups back into minimized
//!   Dijkstra-style guarded commands, so output reads like the paper's.
//! * [`stats`] — ranking time / SCC-detection time / BDD node counts: the
//!   quantities plotted in the paper's Figures 6–11.
//! * [`checkpoint`] — crash-safe checkpointing: the fsync'd write-ahead
//!   journal and atomic BDD snapshots behind
//!   [`AddConvergence::synthesize_resumable`], which let an interrupted
//!   run resume mid-pass and still produce bit-identical output.
//! * [`analysis`] — the local-correctability analysis behind the paper's
//!   case-study table (Fig. 5).
//! * [`job`] — the [`JobSpec`] → [`JobReport`] entry point shared by the
//!   CLI and the `stsyn-serve` job service: one call bundling parsing,
//!   mode/schedule selection, budgets, checkpointing and re-verification.
//!
//! ## Quick start
//!
//! ```
//! use stsyn_core::{AddConvergence, Options};
//! use stsyn_protocol::dsl;
//!
//! let src = r#"
//!     protocol Ramp {
//!       var c : 0..3;
//!       process P0 reads c writes c { }
//!       invariant c == 3;
//!     }
//! "#;
//! let parsed = dsl::parse(src).unwrap();
//! let problem = AddConvergence::new(parsed.protocol, parsed.invariant).unwrap();
//! let mut outcome = problem.synthesize(&Options::default()).unwrap();
//! assert!(outcome.verify_strong());
//! let pss = outcome.extract_protocol();
//! assert!(!pss.actions().is_empty()); // recovery actions were added
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod candidates;
pub mod checkpoint;
pub mod extract;
pub mod heuristic;
pub mod job;
pub mod problem;
pub mod schedule;
pub mod stats;
pub mod symmetry;
pub mod weak;

pub use checkpoint::{CheckpointError, CheckpointSession};
pub use heuristic::Outcome;
pub use job::{JobCheckpoint, JobError, JobMode, JobReport, JobSpec};
pub use problem::{AddConvergence, Options, PartialProgress, Phase, SynthesisError};
pub use schedule::Schedule;
pub use stats::SynthesisStats;
pub use stsyn_symbolic::Engine;
