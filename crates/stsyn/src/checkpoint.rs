//! Crash-safe checkpointing: a write-ahead journal plus BDD snapshots.
//!
//! A checkpoint directory holds three kinds of files:
//!
//! * `journal.bin` — an append-only **write-ahead journal**. After a fixed
//!   header (`b"STSYNJNL"` + version), every record is framed as
//!   `len:u32 | crc32(payload):u32 | payload` and fsync'd as soon as it is
//!   appended, so the journal always ends in a (possibly empty) valid
//!   prefix followed by at most one torn record. Readers stop at the first
//!   invalid frame and report the salvaged prefix with a warning — a torn
//!   or corrupted tail is *recovered from*, never panicked on.
//! * `rank-NNNNN.bdd` — one BDD snapshot per committed rank layer, in the
//!   [`stsyn_bdd`] dump format (versioned, checksummed). Snapshots are
//!   written to a temp file and atomically renamed into place.
//! * `lock` — holds the PID of the synthesizer owning the directory.
//!   A live PID refuses the takeover ([`CheckpointError::Locked`]); a
//!   stale one (crashed run) is detected and replaced with a warning.
//!
//! ## What gets journaled
//!
//! The heuristic's durable decision points are exactly the two kinds of
//! committed work named by the determinism argument in DESIGN.md:
//!
//! * each completed **rank layer** (`RankLayer` + snapshot file, then a
//!   final `RanksDone`), and
//! * each **accepted recovery group** (`Group` with the pass / rank /
//!   schedule-step coordinate and the full group descriptor), with a
//!   `StepDone` fence after every completed schedule step.
//!
//! On resume the journal is replayed against a freshly-rebuilt
//! [`SymbolicContext`]: completed rank layers are loaded from their
//! snapshots instead of recomputed, completed schedule steps re-apply
//! their recorded groups and skip the scan/SCC work entirely, and a
//! partially-completed step re-applies its committed groups before
//! re-running live. Because every journaled decision is replayed in
//! journal order and all symbolic state is canonical under the recorded
//! variable order, a resumed run produces a protocol **bit-identical** to
//! an uninterrupted one.

use crate::problem::Phase;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use stsyn_bdd::{crc32, Bdd, Manager};
use stsyn_protocol::group::GroupDesc;
use stsyn_protocol::ProcIdx;
use stsyn_symbolic::SymbolicContext;

/// Journal file name inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "journal.bin";
/// Lock file name inside a checkpoint directory.
pub const LOCK_FILE: &str = "lock";
/// Journal header magic.
pub const JOURNAL_MAGIC: &[u8; 8] = b"STSYNJNL";
/// Journal format version.
pub const JOURNAL_VERSION: u32 = 1;

/// Why a checkpoint operation failed. Journal/snapshot *corruption* is not
/// an error (it degrades to the last valid prefix, with a warning); these
/// are the conditions that genuinely prevent checkpointed synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Reading or writing a checkpoint file failed.
    Io {
        /// The file or directory involved.
        path: String,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// Another live synthesizer process owns the checkpoint directory.
    Locked {
        /// PID recorded in the lock file.
        pid: u32,
    },
    /// The journal belongs to a different problem/options/schedule than
    /// this run (fingerprint mismatch) — resuming it would be unsound.
    Mismatch,
    /// A fresh (non-resume) run was pointed at a directory that already
    /// holds a journal; pass `--resume` or use an empty directory.
    Exists,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint I/O error on {path}: {message}")
            }
            CheckpointError::Locked { pid } => {
                write!(f, "checkpoint directory is locked by live process {pid}")
            }
            CheckpointError::Mismatch => write!(
                f,
                "checkpoint journal was written by a different problem, options or schedule"
            ),
            CheckpointError::Exists => write!(
                f,
                "checkpoint directory already contains a journal (resume it or use an empty \
                 directory)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io { path: path.display().to_string(), message: e.to_string() }
}

/// One write-ahead journal record. `Group` and `StepDone` are keyed by the
/// heuristic's deterministic step coordinate `(pass, rank, step)` where
/// `step` is the position in the recovery schedule (`rank` is 0 in pass 3,
/// which runs once over all remaining deadlocks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Run identity: must match before any replay is attempted.
    Start {
        /// Hash of the protocol, invariant, schedule and decision-relevant
        /// options (the budget is deliberately excluded).
        fingerprint: u64,
    },
    /// Rank layer `index` was committed; its predicate is in `file`.
    RankLayer {
        /// 1-based layer index (`Rank[0] = I` is never snapshotted).
        index: u32,
        /// Snapshot file name, relative to the checkpoint directory.
        file: String,
    },
    /// `ComputeRanks` finished with highest finite rank `max_rank`.
    RanksDone {
        /// The highest finite rank `M`.
        max_rank: u32,
    },
    /// A recovery group passed `Identify_Resolve_Cycles` and was added.
    Group {
        /// Pass (1–3).
        pass: u8,
        /// Rank being targeted (0 in pass 3).
        rank: u32,
        /// Position in the recovery schedule.
        step: u32,
        /// The accepted group.
        desc: GroupDesc,
    },
    /// The schedule step at this coordinate completed (its scan, SCC
    /// check and every group commit are all in the journal).
    StepDone {
        /// Pass (1–3).
        pass: u8,
        /// Rank being targeted (0 in pass 3).
        rank: u32,
        /// Position in the recovery schedule.
        step: u32,
    },
    /// Cumulative BDD-manager counters at the moment of the append.
    /// Replayed on resume (via [`stsyn_bdd::Manager::adopt_counters`]) so
    /// gc-run and cache-probe statistics continue across a crash instead
    /// of silently resetting with the rebuilt manager — resumed-run
    /// metrics stay comparable to uninterrupted runs. Last record wins.
    Counters {
        /// Garbage collections performed so far.
        gc_runs: u64,
        /// Operation-cache probes so far.
        cache_lookups: u64,
        /// Operation-cache probes that hit.
        cache_hits: u64,
        /// Peak live node count observed so far.
        peak_live: u64,
    },
    /// The run was cut short by resource exhaustion during `phase`; the
    /// journal up to here is the final checkpoint.
    Cut {
        /// Display form of the interrupted [`Phase`].
        phase: String,
    },
    /// Synthesis completed successfully.
    Done,
}

// --- Record encoding -----------------------------------------------------

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_slice_u32(buf: &mut Vec<u8>, vals: &[u32]) {
    push_u32(buf, vals.len() as u32);
    for &v in vals {
        push_u32(buf, v);
    }
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn encode(rec: &Record) -> Vec<u8> {
    let mut buf = Vec::new();
    match rec {
        Record::Start { fingerprint } => {
            buf.push(1);
            buf.extend_from_slice(&fingerprint.to_le_bytes());
        }
        Record::RankLayer { index, file } => {
            buf.push(2);
            push_u32(&mut buf, *index);
            push_str(&mut buf, file);
        }
        Record::RanksDone { max_rank } => {
            buf.push(3);
            push_u32(&mut buf, *max_rank);
        }
        Record::Group { pass, rank, step, desc } => {
            buf.push(4);
            buf.push(*pass);
            push_u32(&mut buf, *rank);
            push_u32(&mut buf, *step);
            push_u32(&mut buf, desc.process.0 as u32);
            push_slice_u32(&mut buf, &desc.pre);
            push_slice_u32(&mut buf, &desc.post);
        }
        Record::StepDone { pass, rank, step } => {
            buf.push(5);
            buf.push(*pass);
            push_u32(&mut buf, *rank);
            push_u32(&mut buf, *step);
        }
        Record::Counters { gc_runs, cache_lookups, cache_hits, peak_live } => {
            buf.push(8);
            for v in [gc_runs, cache_lookups, cache_hits, peak_live] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        Record::Cut { phase } => {
            buf.push(6);
            push_str(&mut buf, phase);
        }
        Record::Done => buf.push(7),
    }
    buf
}

struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    fn vec_u32(&mut self) -> Option<Vec<u32>> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) / 4 {
            return None;
        }
        (0..n).map(|_| self.u32()).collect()
    }

    fn string(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let bytes = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode(payload: &[u8]) -> Option<Record> {
    let mut d = Decoder { buf: payload, pos: 0 };
    let rec = match d.u8()? {
        1 => Record::Start { fingerprint: d.u64()? },
        2 => Record::RankLayer { index: d.u32()?, file: d.string()? },
        3 => Record::RanksDone { max_rank: d.u32()? },
        4 => Record::Group {
            pass: d.u8()?,
            rank: d.u32()?,
            step: d.u32()?,
            desc: GroupDesc {
                process: ProcIdx(d.u32()? as usize),
                pre: d.vec_u32()?,
                post: d.vec_u32()?,
            },
        },
        5 => Record::StepDone { pass: d.u8()?, rank: d.u32()?, step: d.u32()? },
        6 => Record::Cut { phase: d.string()? },
        7 => Record::Done,
        8 => Record::Counters {
            gc_runs: d.u64()?,
            cache_lookups: d.u64()?,
            cache_hits: d.u64()?,
            peak_live: d.u64()?,
        },
        _ => return None,
    };
    d.finished().then_some(rec)
}

// --- Journal reading/writing ---------------------------------------------

/// The salvageable contents of a journal file: every record up to the
/// first invalid frame, the byte length of that valid prefix, and a
/// warning describing any dropped tail.
pub struct JournalContents {
    /// Records of the valid prefix, in append order.
    pub records: Vec<Record>,
    /// Byte offset of the end of the valid prefix (header included).
    pub valid_len: u64,
    /// Present iff a corrupt or torn tail was dropped.
    pub warning: Option<String>,
}

/// Read a journal, salvaging the longest valid prefix. A missing file
/// yields zero records; corruption anywhere (header included) is reported
/// through `warning`, never an error or a panic — the only hard failure
/// is the I/O to read the file at all.
#[must_use = "an unreadable journal is reported through the Result"]
pub fn read_journal(path: &Path) -> Result<JournalContents, CheckpointError> {
    let buf = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(JournalContents { records: Vec::new(), valid_len: 0, warning: None })
        }
        Err(e) => return Err(io_err(path, e)),
    };
    let header_len = JOURNAL_MAGIC.len() + 4;
    if buf.len() < header_len
        || &buf[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC
        || u32::from_le_bytes(buf[JOURNAL_MAGIC.len()..header_len].try_into().expect("4 bytes"))
            != JOURNAL_VERSION
    {
        return Ok(JournalContents {
            records: Vec::new(),
            valid_len: 0,
            warning: Some("journal header is corrupt; discarding the journal".to_string()),
        });
    }
    let mut records = Vec::new();
    let mut pos = header_len;
    let mut warning = None;
    while pos < buf.len() {
        let frame = (|| {
            let len = u32::from_le_bytes(buf.get(pos..pos + 4)?.try_into().ok()?) as usize;
            let stored_crc = u32::from_le_bytes(buf.get(pos + 4..pos + 8)?.try_into().ok()?);
            let payload = buf.get(pos + 8..(pos + 8).checked_add(len)?)?;
            if crc32(payload) != stored_crc {
                return None;
            }
            decode(payload).map(|rec| (rec, 8 + len))
        })();
        match frame {
            Some((rec, advance)) => {
                records.push(rec);
                pos += advance;
            }
            None => {
                warning = Some(format!(
                    "journal has a corrupt or torn tail at byte {pos}; resuming from the \
                     {} valid record(s) before it",
                    records.len()
                ));
                break;
            }
        }
    }
    Ok(JournalContents { records, valid_len: pos as u64, warning })
}

#[derive(Debug)]
struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Create (or truncate) a journal and write the header.
    fn create(path: &Path) -> Result<Self, CheckpointError> {
        let mut file = File::create(path).map_err(|e| io_err(path, e))?;
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(JOURNAL_MAGIC);
        header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        file.write_all(&header).map_err(|e| io_err(path, e))?;
        file.sync_data().map_err(|e| io_err(path, e))?;
        Ok(JournalWriter { file, path: path.to_path_buf() })
    }

    /// Open an existing journal for appending, truncating any invalid
    /// tail at `valid_len` first.
    fn open_at(path: &Path, valid_len: u64) -> Result<Self, CheckpointError> {
        let mut file = OpenOptions::new().write(true).open(path).map_err(|e| io_err(path, e))?;
        file.set_len(valid_len).map_err(|e| io_err(path, e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, e))?;
        Ok(JournalWriter { file, path: path.to_path_buf() })
    }

    /// Append one framed record and fsync it — the write-ahead guarantee.
    fn append(&mut self, rec: &Record) -> Result<(), CheckpointError> {
        let payload = encode(rec);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame).map_err(|e| io_err(&self.path, e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))
    }
}

// --- Lock file -----------------------------------------------------------

#[derive(Debug)]
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

fn pid_alive(pid: u32) -> bool {
    // Linux: a live process has a /proc entry. On platforms without
    // /proc every lock is treated as stale (crash recovery wins).
    Path::new("/proc").join(pid.to_string()).exists()
}

fn acquire_lock(dir: &Path) -> Result<(LockGuard, Option<String>), CheckpointError> {
    let path = dir.join(LOCK_FILE);
    let mut warning = None;
    loop {
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                let me = std::process::id();
                f.write_all(me.to_string().as_bytes()).map_err(|e| io_err(&path, e))?;
                f.sync_data().map_err(|e| io_err(&path, e))?;
                return Ok((LockGuard { path }, warning));
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder =
                    fs::read_to_string(&path).ok().and_then(|s| s.trim().parse::<u32>().ok());
                match holder {
                    Some(pid) if pid != std::process::id() && pid_alive(pid) => {
                        return Err(CheckpointError::Locked { pid });
                    }
                    _ => {
                        // Stale (dead PID or unparseable): take it over.
                        warning = Some(format!(
                            "removed stale checkpoint lock {} (previous owner is gone)",
                            path.display()
                        ));
                        fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
                    }
                }
            }
            Err(e) => return Err(io_err(&path, e)),
        }
    }
}

// --- Snapshots -----------------------------------------------------------

/// Write `bytes` to `dir/name` atomically: temp file, fsync, rename,
/// fsync the directory.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let dst = dir.join(name);
    let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
    f.sync_data().map_err(|e| io_err(&tmp, e))?;
    drop(f);
    fs::rename(&tmp, &dst).map_err(|e| io_err(&dst, e))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

// --- Replay state --------------------------------------------------------

/// How the engine should treat one `(pass, rank, step)` schedule step.
pub(crate) enum StepMode {
    /// The step completed before the crash: re-apply exactly these groups
    /// (in order) and skip the scan/SCC work.
    Replay(Vec<GroupDesc>),
    /// The step was interrupted mid-way: re-apply the committed groups,
    /// then run the step live (already-included groups are skipped by the
    /// scan, so the live re-run continues exactly where the crash cut).
    Partial(Vec<GroupDesc>),
    /// No journal knowledge: run live and journal as we go.
    Live,
}

#[derive(Default, Debug)]
struct Replay {
    /// 1-based layer index → snapshot file (last record wins).
    rank_layers: HashMap<u32, String>,
    ranks_done: Option<u32>,
    groups: HashMap<(u8, u32, u32), Vec<GroupDesc>>,
    done_steps: HashSet<(u8, u32, u32)>,
    /// Last journaled manager counters (gc runs, cache lookups/hits,
    /// peak live nodes).
    counters: Option<(u64, u64, u64, u64)>,
}

impl Replay {
    fn build(records: &[Record]) -> Replay {
        let mut r = Replay::default();
        for rec in records {
            match rec {
                Record::Start { .. } | Record::Cut { .. } | Record::Done => {}
                Record::RankLayer { index, file } => {
                    r.rank_layers.insert(*index, file.clone());
                }
                Record::RanksDone { max_rank } => r.ranks_done = Some(*max_rank),
                Record::Group { pass, rank, step, desc } => {
                    r.groups.entry((*pass, *rank, *step)).or_default().push(desc.clone());
                }
                Record::StepDone { pass, rank, step } => {
                    r.done_steps.insert((*pass, *rank, *step));
                }
                Record::Counters { gc_runs, cache_lookups, cache_hits, peak_live } => {
                    r.counters = Some((*gc_runs, *cache_lookups, *cache_hits, *peak_live));
                }
            }
        }
        r
    }
}

// --- The session ---------------------------------------------------------

/// A live checkpointed synthesis run: owns the directory lock, the journal
/// writer and the replay state parsed from any previous run's journal.
#[derive(Debug)]
pub struct CheckpointSession {
    dir: PathBuf,
    journal: JournalWriter,
    _lock: LockGuard,
    replay: Replay,
    warnings: Vec<String>,
    /// First failure raised inside an infallible observer; surfaced by
    /// [`CheckpointSession::take_error`] at the next fallible boundary.
    poisoned: Option<CheckpointError>,
}

impl CheckpointSession {
    /// Start a **fresh** checkpointed run in `dir` (created if missing).
    /// Refuses a directory that already holds a journal with records —
    /// resume it or point the run somewhere empty.
    #[must_use = "failing to open the checkpoint directory is reported through the Result"]
    pub fn create(dir: &Path, fingerprint: u64) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let (lock, lock_warning) = acquire_lock(dir)?;
        let journal_path = dir.join(JOURNAL_FILE);
        let existing = read_journal(&journal_path)?;
        if !existing.records.is_empty() {
            return Err(CheckpointError::Exists);
        }
        let mut journal = JournalWriter::create(&journal_path)?;
        journal.append(&Record::Start { fingerprint })?;
        Ok(CheckpointSession {
            dir: dir.to_path_buf(),
            journal,
            _lock: lock,
            replay: Replay::default(),
            warnings: lock_warning.into_iter().collect(),
            poisoned: None,
        })
    }

    /// **Resume** from `dir`: salvage the longest valid journal prefix
    /// (warning on a torn/corrupt tail), verify the run fingerprint, and
    /// prepare the replay state. An empty or headerless journal degrades
    /// to a fresh run with a warning.
    #[must_use = "an incompatible or locked checkpoint is reported through the Result"]
    pub fn resume(dir: &Path, fingerprint: u64) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let (lock, lock_warning) = acquire_lock(dir)?;
        let journal_path = dir.join(JOURNAL_FILE);
        let contents = read_journal(&journal_path)?;
        let mut warnings: Vec<String> = lock_warning.into_iter().collect();
        warnings.extend(contents.warning.clone());
        match contents.records.first() {
            Some(Record::Start { fingerprint: fp }) if *fp == fingerprint => {
                let journal = JournalWriter::open_at(&journal_path, contents.valid_len)?;
                Ok(CheckpointSession {
                    dir: dir.to_path_buf(),
                    journal,
                    _lock: lock,
                    replay: Replay::build(&contents.records),
                    warnings,
                    poisoned: None,
                })
            }
            Some(Record::Start { .. }) => Err(CheckpointError::Mismatch),
            // A valid prefix can only start with Start (it is the first
            // record ever appended); anything else means the journal was
            // unusable — start fresh.
            _ => {
                if contents.valid_len > 0 || contents.warning.is_some() {
                    warnings.push(
                        "journal has no usable records; starting synthesis from scratch"
                            .to_string(),
                    );
                }
                let mut journal = JournalWriter::create(&journal_path)?;
                journal.append(&Record::Start { fingerprint })?;
                Ok(CheckpointSession {
                    dir: dir.to_path_buf(),
                    journal,
                    _lock: lock,
                    replay: Replay::default(),
                    warnings,
                    poisoned: None,
                })
            }
        }
    }

    /// Warnings accumulated while opening/recovering the checkpoint
    /// (stale lock takeover, dropped journal tail, unloadable snapshots).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    fn rank_file_name(index: usize) -> String {
        format!("rank-{index:05}.bdd")
    }

    /// Load the journaled rank layers into `ctx`'s manager, in order,
    /// stopping (with a warning) at the first missing or corrupt snapshot.
    /// Returns the contiguous prefix of layers `1..` and whether ranking
    /// had fully completed (so the caller can skip `ComputeRanks`).
    pub(crate) fn load_rank_prefix(&mut self, ctx: &mut SymbolicContext) -> (Vec<Bdd>, bool) {
        let mut layers = Vec::new();
        let mut index = 1u32;
        while let Some(file) = self.replay.rank_layers.get(&index).cloned() {
            let path = self.dir.join(&file);
            let loaded = File::open(&path)
                .map_err(|e| e.to_string())
                .and_then(|mut f| ctx.mgr().load_bdds_into(&mut f).map_err(|e| e.to_string()));
            match loaded {
                Ok(roots) if roots.len() == 1 => layers.push(roots[0]),
                Ok(_) => {
                    self.warnings.push(format!(
                        "rank snapshot {} has the wrong arity; recomputing from layer {index}",
                        path.display()
                    ));
                    break;
                }
                Err(e) => {
                    self.warnings.push(format!(
                        "rank snapshot {} is unreadable ({e}); recomputing from layer {index}",
                        path.display()
                    ));
                    break;
                }
            }
            index += 1;
        }
        let complete = match self.replay.ranks_done {
            Some(max_rank) => layers.len() as u32 >= max_rank,
            None => false,
        };
        (layers, complete)
    }

    /// Journal one freshly-committed rank layer: snapshot the predicate
    /// atomically, then append the `RankLayer` record. Infallible by
    /// signature (it is called from inside `ComputeRanks`); a failure
    /// poisons the session and surfaces at [`CheckpointSession::take_error`].
    pub(crate) fn observe_rank_layer(&mut self, mgr: &Manager, index: usize, layer: Bdd) {
        if self.poisoned.is_some() {
            return;
        }
        let file = Self::rank_file_name(index);
        let bytes = mgr.dump_bdds_to_vec(&[layer]);
        let result = write_atomic(&self.dir, &file, &bytes)
            .and_then(|()| self.journal.append(&Record::RankLayer { index: index as u32, file }))
            .and_then(|()| self.journal.append(&counters_record(mgr)));
        if let Err(e) = result {
            self.poisoned = Some(e);
        }
    }

    /// Take the first error raised inside an infallible observer, if any.
    pub(crate) fn take_error(&mut self) -> Option<CheckpointError> {
        self.poisoned.take()
    }

    /// Journal the completion of ranking (idempotent across resumes).
    pub(crate) fn record_ranks_done(&mut self, max_rank: usize) -> Result<(), CheckpointError> {
        if self.replay.ranks_done.is_some() {
            return Ok(());
        }
        self.journal.append(&Record::RanksDone { max_rank: max_rank as u32 })
    }

    /// How should the engine treat the schedule step at this coordinate?
    pub(crate) fn step_mode(&self, pass: u8, rank: u32, step: u32) -> StepMode {
        let key = (pass, rank, step);
        let groups = self.replay.groups.get(&key).cloned().unwrap_or_default();
        if self.replay.done_steps.contains(&key) {
            StepMode::Replay(groups)
        } else if !groups.is_empty() {
            StepMode::Partial(groups)
        } else {
            StepMode::Live
        }
    }

    /// Journal one accepted recovery group (write-ahead, fsync'd).
    pub(crate) fn record_group(
        &mut self,
        pass: u8,
        rank: u32,
        step: u32,
        desc: &GroupDesc,
    ) -> Result<(), CheckpointError> {
        self.journal.append(&Record::Group { pass, rank, step, desc: desc.clone() })
    }

    /// Journal the completion of a schedule step, plus the manager's
    /// cumulative counters as of that fence (so a resume after the next
    /// crash continues the metric series from here).
    pub(crate) fn record_step_done(
        &mut self,
        pass: u8,
        rank: u32,
        step: u32,
        mgr: &Manager,
    ) -> Result<(), CheckpointError> {
        self.journal.append(&Record::StepDone { pass, rank, step })?;
        self.journal.append(&counters_record(mgr))
    }

    /// The counters journaled by the previous run, as a [`ManagerStats`]
    /// carrier suitable for [`Manager::adopt_counters`] (only the
    /// cumulative fields are meaningful).
    pub(crate) fn prior_counters(&self) -> Option<stsyn_bdd::ManagerStats> {
        self.replay.counters.map(|(gc_runs, cache_lookups, cache_hits, peak_live)| {
            stsyn_bdd::ManagerStats {
                gc_runs: gc_runs as usize,
                cache_lookups,
                cache_hits,
                peak_live_nodes: peak_live as usize,
                ..Default::default()
            }
        })
    }

    /// Final checkpoint on resource exhaustion: everything committed is
    /// already fsync'd in the journal; this appends the `Cut` marker so a
    /// resumed run knows the tail is intentional, not torn.
    pub(crate) fn record_cut(&mut self, phase: &Phase) -> Result<(), CheckpointError> {
        self.journal.append(&Record::Cut { phase: phase.to_string() })
    }

    /// Journal successful completion.
    pub(crate) fn record_done(&mut self) -> Result<(), CheckpointError> {
        self.journal.append(&Record::Done)
    }
}

/// A `Counters` record snapshotting `mgr`'s cumulative statistics.
fn counters_record(mgr: &Manager) -> Record {
    let s = mgr.stats();
    Record::Counters {
        gc_runs: s.gc_runs as u64,
        cache_lookups: s.cache_lookups,
        cache_hits: s.cache_hits,
        peak_live: s.peak_live_nodes as u64,
    }
}

/// Run identity for a journal: hashes the protocol, invariant, schedule
/// and every decision-relevant option. The budget is deliberately
/// excluded — a resumed run typically carries a different (or no) budget.
pub fn fingerprint(
    protocol: &stsyn_protocol::Protocol,
    invariant: &stsyn_protocol::expr::Expr,
    opts: &crate::problem::Options,
    schedule: &crate::schedule::Schedule,
) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{protocol:?}").hash(&mut h);
    format!("{invariant:?}").hash(&mut h);
    format!("{:?}", opts.scc).hash(&mut h);
    opts.symmetry.is_some().hash(&mut h);
    schedule.order().hash(&mut h);
    // Only hashed when non-default so journals written before the engine
    // option existed stay resumable. All engines layer ranks identically,
    // but a resume must re-run under the journal's engine for its
    // perf/trace characteristics to match what the operator asked for.
    if opts.engine != stsyn_symbolic::Engine::Monolithic {
        opts.engine.as_str().hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "stsyn-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Start { fingerprint: 0xDEAD_BEEF_CAFE_F00D },
            Record::RankLayer { index: 1, file: "rank-00001.bdd".into() },
            Record::RanksDone { max_rank: 1 },
            Record::Group {
                pass: 1,
                rank: 1,
                step: 0,
                desc: GroupDesc { process: ProcIdx(2), pre: vec![0, 1], post: vec![3] },
            },
            Record::StepDone { pass: 1, rank: 1, step: 0 },
            Record::Counters { gc_runs: 3, cache_lookups: 1000, cache_hits: 800, peak_live: 4096 },
            Record::Cut { phase: "recovery pass 1".into() },
            Record::Done,
        ]
    }

    #[test]
    fn records_round_trip_through_the_codec() {
        for rec in sample_records() {
            let bytes = encode(&rec);
            assert_eq!(decode(&bytes).as_ref(), Some(&rec), "{rec:?}");
        }
    }

    #[test]
    fn journal_round_trips_and_salvages_torn_tail() {
        let dir = temp_dir("journal");
        let path = dir.join(JOURNAL_FILE);
        let records = sample_records();
        let mut w = JournalWriter::create(&path).unwrap();
        for rec in &records {
            w.append(rec).unwrap();
        }
        drop(w);
        let full = read_journal(&path).unwrap();
        assert_eq!(full.records, records);
        assert!(full.warning.is_none());
        assert_eq!(full.valid_len, fs::metadata(&path).unwrap().len());

        // Truncate at every byte: the salvaged prefix is always a prefix
        // of the record list, never an error or a panic.
        let bytes = fs::read(&path).unwrap();
        for len in 0..bytes.len() {
            fs::write(&path, &bytes[..len]).unwrap();
            let c = read_journal(&path).unwrap();
            assert!(c.records.len() <= records.len());
            assert!(records.starts_with(&c.records), "truncation at {len}");
            // A cut *inside* a frame is detected and warned about; a cut
            // exactly at a frame boundary is indistinguishable from a
            // journal that simply ends there.
            if c.valid_len < len as u64 {
                assert!(c.warning.is_some(), "truncation at {len}");
            }
        }

        // Flip every byte: same guarantee.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x80;
            fs::write(&path, &corrupt).unwrap();
            let c = read_journal(&path).unwrap();
            assert!(records.starts_with(&c.records), "flip at {i}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn session_create_then_resume_replays() {
        let dir = temp_dir("session");
        let fp = 42u64;
        {
            let mut s = CheckpointSession::create(&dir, fp).unwrap();
            s.record_group(
                1,
                1,
                0,
                &GroupDesc { process: ProcIdx(0), pre: vec![1], post: vec![0] },
            )
            .unwrap();
            s.record_step_done(1, 1, 0, &Manager::new()).unwrap();
        }
        // A second fresh run must refuse the populated directory.
        assert_eq!(CheckpointSession::create(&dir, fp).unwrap_err(), CheckpointError::Exists);
        // A different fingerprint must refuse to resume.
        assert_eq!(CheckpointSession::resume(&dir, fp + 1).unwrap_err(), CheckpointError::Mismatch);
        let s = CheckpointSession::resume(&dir, fp).unwrap();
        match s.step_mode(1, 1, 0) {
            StepMode::Replay(groups) => assert_eq!(groups.len(), 1),
            _ => panic!("expected Replay"),
        }
        assert!(matches!(s.step_mode(1, 1, 1), StepMode::Live));
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_round_trip_and_last_record_wins() {
        let dir = temp_dir("counters");
        let fp = 9u64;
        {
            let mut s = CheckpointSession::create(&dir, fp).unwrap();
            // Two fences: the second must win on resume.
            let mut mgr = Manager::new();
            mgr.adopt_counters(&stsyn_bdd::ManagerStats {
                gc_runs: 1,
                cache_lookups: 10,
                cache_hits: 5,
                peak_live_nodes: 100,
                ..Default::default()
            });
            s.record_step_done(1, 1, 0, &mgr).unwrap();
            mgr.adopt_counters(&stsyn_bdd::ManagerStats {
                gc_runs: 2,
                cache_lookups: 90,
                cache_hits: 45,
                peak_live_nodes: 900,
                ..Default::default()
            });
            s.record_step_done(1, 1, 1, &mgr).unwrap();
        }
        let s = CheckpointSession::resume(&dir, fp).unwrap();
        let prior = s.prior_counters().expect("no counters journaled");
        assert_eq!(prior.gc_runs, 3);
        assert_eq!(prior.cache_lookups, 100);
        assert_eq!(prior.cache_hits, 50);
        assert_eq!(prior.peak_live_nodes, 900);
        // Adopting continues the series on a fresh manager.
        let mut fresh = Manager::new();
        fresh.adopt_counters(&prior);
        let stats = fresh.stats();
        assert_eq!(stats.cache_lookups, 100);
        assert_eq!(stats.cache_hits, 50);
        assert_eq!(stats.gc_runs, 3);
        assert_eq!(stats.peak_live_nodes, 900);
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_step_is_detected() {
        let dir = temp_dir("partial");
        let fp = 7u64;
        {
            let mut s = CheckpointSession::create(&dir, fp).unwrap();
            s.record_group(
                2,
                3,
                1,
                &GroupDesc { process: ProcIdx(1), pre: vec![2], post: vec![1] },
            )
            .unwrap();
            // No StepDone: the run died mid-step.
        }
        let s = CheckpointSession::resume(&dir, fp).unwrap();
        assert!(matches!(s.step_mode(2, 3, 1), StepMode::Partial(g) if g.len() == 1));
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_is_taken_over_and_live_lock_refused() {
        let dir = temp_dir("lock");
        // Stale lock: PID that cannot be alive (PID max is < 2^22 by
        // default on Linux; u32::MAX is far beyond any real PID).
        fs::write(dir.join(LOCK_FILE), format!("{}", u32::MAX - 1)).unwrap();
        let s = CheckpointSession::create(&dir, 1).unwrap();
        assert!(s.warnings().iter().any(|w| w.contains("stale")));
        drop(s);

        // Live lock: our own PID in the file but from "another" session —
        // simulate with PID 1 (init: always alive).
        fs::write(dir.join(LOCK_FILE), "1").unwrap();
        match CheckpointSession::resume(&dir, 1) {
            Err(CheckpointError::Locked { pid: 1 }) => {}
            other => panic!("expected Locked, got {:?}", other.err()),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_on_empty_dir_starts_fresh() {
        let dir = temp_dir("fresh");
        let s = CheckpointSession::resume(&dir, 9).unwrap();
        assert!(matches!(s.step_mode(1, 1, 0), StepMode::Live));
        assert!(s.warnings().is_empty());
        drop(s);
        // The Start record is durable: a second resume validates it.
        assert!(CheckpointSession::resume(&dir, 9).is_ok());
        assert_eq!(CheckpointSession::resume(&dir, 8).unwrap_err(), CheckpointError::Mismatch);
        fs::remove_dir_all(&dir).unwrap();
    }
}
