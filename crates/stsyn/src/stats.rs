//! Synthesis statistics — the quantities the paper's evaluation plots.
//!
//! Figures 6/8/10 plot *ranking time*, *SCC-detection time* and *total
//! execution time*; Figures 7/9/11 plot *average SCC size* and *total
//! program size*, both measured in **BDD nodes** (the paper argues node
//! counts are the platform-independent space metric). This module
//! accumulates exactly those series during a synthesis run.

use std::time::Duration;

/// Counters filled in by one synthesis run.
#[derive(Debug, Clone, Default)]
pub struct SynthesisStats {
    /// Wall time spent in `ComputeRanks` (the §IV approximation).
    pub ranking_time: Duration,
    /// Wall time spent inside symbolic SCC detection
    /// (`Identify_Resolve_Cycles`), summed over all invocations.
    pub scc_time: Duration,
    /// Total wall time of the synthesis call.
    pub total_time: Duration,
    /// Number of `Identify_Resolve_Cycles` invocations.
    pub scc_calls: usize,
    /// Number of (non-trivial) SCCs detected across all invocations.
    pub sccs_found: usize,
    /// Sum of the BDD node counts of every detected SCC (for the
    /// average-SCC-size series; 0 when none were found).
    pub scc_nodes_total: usize,
    /// BDD node count of the final `p_ss` transition relation — the
    /// "total program size" series.
    pub program_nodes: usize,
    /// Peak live BDD nodes in the manager over the run.
    pub peak_live_nodes: usize,
    /// Number of ranks `M` computed by `ComputeRanks`.
    pub max_rank: usize,
    /// Number of recovery groups included in `p_ss`.
    pub groups_added: usize,
    /// Number of candidate groups considered.
    pub candidates: usize,
    /// Which pass resolved the last deadlock (1–3); 0 when no recovery was
    /// needed at all.
    pub finished_in_pass: u8,
    /// Diagnostic: time scanning candidates (guard/From/To tests).
    pub scan_time: Duration,
    /// Diagnostic: time recomputing deadlock predicates.
    pub deadlock_time: Duration,
    /// Diagnostic: time folding accepted groups into `p_ss`.
    pub include_time: Duration,
    /// Budget ticks consumed by the run's BDD operations — a deterministic,
    /// platform-independent work metric (also the coordinate system for the
    /// fault-injection harness).
    pub bdd_ticks: u64,
}

impl SynthesisStats {
    /// Average SCC size in BDD nodes (the Fig. 7/9/11 series), or 0.0 when
    /// no SCC was ever detected (e.g. the locally-correctable coloring
    /// protocol).
    pub fn avg_scc_nodes(&self) -> f64 {
        if self.sccs_found == 0 {
            0.0
        } else {
            self.scc_nodes_total as f64 / self.sccs_found as f64
        }
    }

    /// Seconds spent ranking (convenience for the bench harness).
    pub fn ranking_secs(&self) -> f64 {
        self.ranking_time.as_secs_f64()
    }

    /// Seconds spent in SCC detection.
    pub fn scc_secs(&self) -> f64 {
        self.scc_time.as_secs_f64()
    }

    /// Total seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_time.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_scc_nodes_handles_zero() {
        let s = SynthesisStats::default();
        assert_eq!(s.avg_scc_nodes(), 0.0);
        let s2 = SynthesisStats { sccs_found: 4, scc_nodes_total: 100, ..Default::default() };
        assert_eq!(s2.avg_scc_nodes(), 25.0);
    }

    #[test]
    fn second_conversions() {
        let s = SynthesisStats {
            ranking_time: Duration::from_millis(250),
            scc_time: Duration::from_millis(500),
            total_time: Duration::from_secs(1),
            ..Default::default()
        };
        assert!((s.ranking_secs() - 0.25).abs() < 1e-9);
        assert!((s.scc_secs() - 0.5).abs() < 1e-9);
        assert!((s.total_secs() - 1.0).abs() < 1e-9);
    }
}
