//! Candidate recovery groups and the maximal candidate protocol `p_im`.
//!
//! §IV, step 1: `p_im` is `δ_p` plus *the weakest set of transitions that
//! start in `¬I` and adhere to the read/write restrictions* — concretely,
//! every transition group whose transitions all originate outside `I`
//! (constraint C1: a group with even one groupmate starting in `I` can
//! never be added, because adding it would change `δ_p | I`).
//!
//! Self-loop groups are excluded outright: a self-loop can neither lower a
//! state's rank nor resolve a deadlock — it only manufactures a one-state
//! non-progress cycle that `Identify_Resolve_Cycles` would immediately have
//! to remove.

use stsyn_bdd::{Bdd, BddError};
use stsyn_protocol::group::{all_groups_of, GroupDesc};
use stsyn_protocol::ProcIdx;
use stsyn_symbolic::SymbolicContext;

use crate::problem::INFALLIBLE;

/// One candidate recovery group with its precomputed symbolic artifacts.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The group descriptor (process, readable-source, written-target).
    pub desc: GroupDesc,
    /// The group's transition relation.
    pub relation: Bdd,
    /// The group's source-state predicate (a readable-variable cube).
    pub source: Bdd,
    /// Set once the heuristic includes this group in `p_ss`.
    pub included: bool,
}

/// All candidate groups of a protocol, indexed by owning process.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Flat candidate storage.
    pub all: Vec<Candidate>,
    /// `by_process[j]` holds indices into `all` for process `j`.
    pub by_process: Vec<Vec<usize>>,
}

impl CandidateSet {
    /// Enumerate the candidates of every process: all non-self-loop groups
    /// whose source predicate is disjoint from `i`.
    pub fn build(ctx: &mut SymbolicContext, i: Bdd) -> CandidateSet {
        Self::try_build(ctx, i).expect(INFALLIBLE)
    }

    /// Fallible variant of [`CandidateSet::build`] for budgeted runs.
    #[must_use = "failures are reported through the Result"]
    pub fn try_build(ctx: &mut SymbolicContext, i: Bdd) -> Result<CandidateSet, BddError> {
        let protocol = ctx.protocol().clone();
        let k = protocol.num_processes();
        let mut all = Vec::new();
        let mut by_process = vec![Vec::new(); k];
        for (j, bucket) in by_process.iter_mut().enumerate() {
            for desc in all_groups_of(&protocol, ProcIdx(j)) {
                if desc.is_self_loop(&protocol) {
                    continue;
                }
                let source = ctx.try_group_source(&desc)?;
                if ctx.mgr().try_intersects(source, i)? {
                    continue; // C1: a groupmate would start in I
                }
                let relation = ctx.try_group_relation(&desc)?;
                bucket.push(all.len());
                all.push(Candidate { desc, relation, source, included: false });
            }
        }
        Ok(CandidateSet { all, by_process })
    }

    /// The union of `delta_p` with every candidate relation — the maximal
    /// candidate protocol `p_im` whose ranks approximate convergence.
    pub fn pim(&self, ctx: &mut SymbolicContext, delta_p: Bdd) -> Bdd {
        self.try_pim(ctx, delta_p).expect(INFALLIBLE)
    }

    /// Fallible variant of [`CandidateSet::pim`] for budgeted runs.
    #[must_use = "failures are reported through the Result"]
    pub fn try_pim(&self, ctx: &mut SymbolicContext, delta_p: Bdd) -> Result<Bdd, BddError> {
        let mut rel = delta_p;
        for c in &self.all {
            rel = ctx.mgr().try_or(rel, c.relation)?;
        }
        Ok(rel)
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// True when no process has any candidate group.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// The BDD roots that a garbage collection must preserve.
    pub fn roots(&self) -> Vec<Bdd> {
        self.all.iter().flat_map(|c| [c.relation, c.source]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::expr::Expr;
    use stsyn_protocol::topology::{ProcessDecl, VarDecl, VarIdx};
    use stsyn_protocol::Protocol;

    /// Two ternary variables; P0 reads both, writes the first.
    fn two_var() -> Protocol {
        let vars = vec![VarDecl::new("a", 3), VarDecl::new("b", 3)];
        let procs =
            vec![ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap()];
        Protocol::new(vars, procs, vec![]).unwrap()
    }

    #[test]
    fn candidates_respect_c1_and_exclude_self_loops() {
        let p = two_var();
        let mut ctx = SymbolicContext::new(p);
        // I = {a == 0}: any group whose source has a == 0 is excluded.
        let i = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::int(0)));
        let set = CandidateSet::build(&mut ctx, i);
        // 9 readable valuations; 3 have a == 0 (excluded); remaining 6
        // valuations × 3 targets − 6 self-loops = 12 candidates.
        assert_eq!(set.len(), 12);
        for c in &set.all {
            assert!(!ctx.mgr().intersects(c.source, i), "C1 violated");
            assert!(!c.desc.is_self_loop(ctx.protocol()));
            assert!(!c.included);
        }
        assert_eq!(set.by_process[0].len(), 12);
    }

    #[test]
    fn pim_unions_delta_p_with_candidates() {
        let p = two_var();
        let mut ctx = SymbolicContext::new(p);
        let i = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::int(0)));
        let delta_p = ctx.protocol_relation(); // empty: no actions
        assert!(delta_p.is_false());
        let set = CandidateSet::build(&mut ctx, i);
        let pim = set.pim(&mut ctx, delta_p);
        assert!(!pim.is_false());
        // p_im must contain a transition from every ¬I state (a ∈ {1,2}
        // states all have some candidate out-edge).
        let not_i = ctx.not_states(i);
        let enabled = ctx.enabled(pim);
        assert!(ctx.mgr().implies_holds(not_i, enabled));
        // And none from I.
        assert!(!ctx.mgr().intersects(enabled, i));
    }

    #[test]
    fn empty_invariant_complement_gives_no_candidates() {
        let p = two_var();
        let mut ctx = SymbolicContext::new(p);
        let i = ctx.all_states(); // I = S_p: every group starts in I
        let set = CandidateSet::build(&mut ctx, i);
        assert!(set.is_empty());
    }

    #[test]
    fn roots_cover_all_bdds() {
        let p = two_var();
        let mut ctx = SymbolicContext::new(p);
        let i = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::int(0)));
        let set = CandidateSet::build(&mut ctx, i);
        assert_eq!(set.roots().len(), 2 * set.len());
    }
}
