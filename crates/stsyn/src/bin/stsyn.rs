//! `stsyn` — the STabilization Synthesizer command-line tool.
//!
//! Reads a protocol description (see `stsyn_protocol::dsl` for the
//! format), adds convergence, and prints the synthesized recovery actions
//! plus an independent verification verdict and the run statistics.
//!
//! ```text
//! stsyn FILE [--weak] [--schedule 1,2,3,0] [--parallel] [--symmetric]
//!            [--timeout SECS] [--max-nodes N]
//!            [--checkpoint-dir DIR] [--resume]
//!            [--emit-dsl OUT.stsyn] [--scc skeleton|lockstep|xiebeerel] [--quiet]
//! ```
//!
//! With `--checkpoint-dir DIR` the run write-ahead-journals every committed
//! rank layer and accepted recovery group into `DIR`; `--resume` replays a
//! journal left by an interrupted (crashed or budget-cut) run and continues
//! where it stopped, producing output bit-identical to an uninterrupted
//! run. Checkpointing applies to strong single-schedule synthesis only
//! (`--weak` and `--parallel` are rejected alongside it).
//!
//! Exit codes: 0 success, 1 synthesis failure (including a verification
//! FAIL), 2 usage error, 3 input error (unreadable file, parse or type
//! error), 4 resource budget exhausted (`--timeout` / `--max-nodes`),
//! 5 checkpoint error (`--checkpoint-dir` unwritable, locked by a live
//! process, or holding a journal from a different problem).

use std::process::ExitCode;
use std::time::Duration;
use stsyn_core::{AddConvergence, Options, Schedule, SynthesisError};
use stsyn_protocol::dsl;
use stsyn_protocol::ProcIdx;
use stsyn_symbolic::scc::SccAlgorithm;
use stsyn_symbolic::Budget;

const EXIT_INPUT: u8 = 3;
const EXIT_RESOURCES: u8 = 4;
const EXIT_CHECKPOINT: u8 = 5;

struct Args {
    file: String,
    weak: bool,
    parallel: bool,
    quiet: bool,
    symmetric: bool,
    emit_dsl: Option<String>,
    schedule: Option<Vec<usize>>,
    scc: SccAlgorithm,
    timeout: Option<f64>,
    max_nodes: Option<usize>,
    checkpoint_dir: Option<String>,
    resume: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: stsyn FILE [--weak] [--schedule 1,2,3,0] [--parallel] [--symmetric] \
         [--timeout SECS] [--max-nodes N] \
         [--checkpoint-dir DIR] [--resume] \
         [--emit-dsl OUT.stsyn] [--scc skeleton|lockstep|xiebeerel] [--quiet]\n\
         exit codes: 0 ok, 1 synthesis/verification failure, 2 usage, \
         3 input error, 4 budget exhausted, 5 checkpoint error"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        file: String::new(),
        weak: false,
        parallel: false,
        quiet: false,
        symmetric: false,
        emit_dsl: None,
        schedule: None,
        scc: SccAlgorithm::Skeleton,
        timeout: None,
        max_nodes: None,
        checkpoint_dir: None,
        resume: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--weak" => args.weak = true,
            "--parallel" => args.parallel = true,
            "--quiet" => args.quiet = true,
            "--symmetric" => args.symmetric = true,
            "--emit-dsl" => {
                args.emit_dsl = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--schedule" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let order: Result<Vec<usize>, _> =
                    spec.split(',').map(|s| s.trim().parse::<usize>()).collect();
                match order {
                    Ok(o) => args.schedule = Some(o),
                    Err(_) => usage(),
                }
            }
            "--scc" => {
                args.scc = match it.next().as_deref() {
                    Some("skeleton") => SccAlgorithm::Skeleton,
                    Some("lockstep") => SccAlgorithm::Lockstep,
                    Some("xiebeerel") => SccAlgorithm::XieBeerel,
                    _ => usage(),
                }
            }
            "--timeout" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 && secs.is_finite() => args.timeout = Some(secs),
                _ => usage(),
            },
            "--max-nodes" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => args.max_nodes = Some(n),
                _ => usage(),
            },
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--resume" => args.resume = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') && args.file.is_empty() => args.file = f.to_string(),
            _ => usage(),
        }
    }
    if args.file.is_empty() {
        usage();
    }
    // Checkpointing journals the single strong-synthesis schedule; weak
    // synthesis has no journaled decision points and parallel exploration
    // races schedules that would fight over one directory.
    if args.checkpoint_dir.is_some() && (args.weak || args.parallel) {
        eprintln!("stsyn: --checkpoint-dir cannot be combined with --weak or --parallel");
        usage();
    }
    if args.resume && args.checkpoint_dir.is_none() {
        eprintln!("stsyn: --resume requires --checkpoint-dir");
        usage();
    }
    args
}

fn build_budget(args: &Args) -> Option<Budget> {
    let mut budget = Budget::unlimited();
    if let Some(secs) = args.timeout {
        budget = budget.with_timeout(Duration::from_secs_f64(secs));
    }
    if let Some(n) = args.max_nodes {
        budget = budget.with_max_nodes(n);
    }
    budget.is_limited().then_some(budget)
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stsyn: cannot read {}: {e}", args.file);
            return ExitCode::from(EXIT_INPUT);
        }
    };
    let parsed = match dsl::parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("stsyn: {}: {e}", args.file);
            return ExitCode::from(EXIT_INPUT);
        }
    };
    let k = parsed.protocol.num_processes();
    let invariant_for_emit = parsed.invariant.clone();
    let problem = match AddConvergence::new(parsed.protocol, parsed.invariant) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("stsyn: {e}");
            return ExitCode::from(EXIT_INPUT);
        }
    };
    let symmetry = if args.symmetric {
        match stsyn_core::symmetry::Symmetry::ring_rotation(problem.protocol()) {
            Ok(sym) => Some(sym),
            Err(e) => {
                eprintln!("stsyn: --symmetric rejected: {e}");
                return ExitCode::from(EXIT_INPUT);
            }
        }
    } else {
        None
    };
    let opts = Options { scc: args.scc, symmetry, budget: build_budget(&args) };

    let schedule = match &args.schedule {
        Some(order) => Schedule::new(order.iter().map(|&i| ProcIdx(i)).collect()),
        None => problem.default_schedule(),
    };
    let result = if args.weak {
        problem.synthesize_weak_with(&opts)
    } else if args.parallel {
        problem.synthesize_parallel(&opts, Schedule::all_rotations(k))
    } else if let Some(dir) = &args.checkpoint_dir {
        problem.synthesize_resumable_with(&opts, schedule, std::path::Path::new(dir), args.resume)
    } else {
        problem.synthesize_with(&opts, schedule)
    };

    match result {
        Ok(mut outcome) => {
            let verified = if args.weak { outcome.verify_weak() } else { outcome.verify_strong() };
            println!(
                "synthesized {} ({} stabilization) with schedule {}",
                parsed.name,
                if args.weak { "weak" } else { "strong" },
                outcome.schedule,
            );
            println!(
                "verification: {}",
                if verified { "PASS (independent model check)" } else { "FAIL" }
            );
            if !outcome.added.is_empty() {
                println!("\nrecovery actions added:");
                print!("{}", outcome.describe_recovery());
            } else {
                println!("\nno recovery needed — the protocol already stabilizes");
            }
            if let Some(path) = &args.emit_dsl {
                let pss = outcome.extract_protocol();
                let text = stsyn_protocol::printer::to_dsl(
                    &format!("{}_SS", parsed.name),
                    &pss,
                    &invariant_for_emit,
                );
                match std::fs::write(path, text) {
                    Ok(()) => println!("\nsynthesized protocol written to {path}"),
                    Err(e) => eprintln!("stsyn: cannot write {path}: {e}"),
                }
            }
            if !args.quiet {
                let s = &outcome.stats;
                println!("\nstatistics:");
                println!("  candidates considered : {}", s.candidates);
                println!("  groups added          : {}", s.groups_added);
                println!("  ranks (M)             : {}", s.max_rank);
                println!("  finished in pass      : {}", s.finished_in_pass);
                println!("  ranking time          : {:.3}s", s.ranking_secs());
                println!(
                    "  SCC detection time    : {:.3}s ({} calls, {} SCCs)",
                    s.scc_secs(),
                    s.scc_calls,
                    s.sccs_found
                );
                println!("  total time            : {:.3}s", s.total_secs());
                println!("  program size          : {} BDD nodes", s.program_nodes);
                println!("  avg SCC size          : {:.1} BDD nodes", s.avg_scc_nodes());
                println!("  peak live nodes       : {}", s.peak_live_nodes);
                println!("  BDD ticks             : {}", s.bdd_ticks);
            }
            if verified {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(SynthesisError::ResourceExhausted { phase, cause, partial }) => {
            report_exhausted(&phase, &cause, &partial)
        }
        // Parallel exploration wraps per-schedule failures; when the budget
        // killed every schedule, surface that as exhaustion, not as the
        // heuristic failing.
        Err(SynthesisError::AllSchedulesFailed(inner))
            if matches!(*inner, SynthesisError::ResourceExhausted { .. }) =>
        {
            let SynthesisError::ResourceExhausted { phase, cause, partial } = *inner else {
                unreachable!()
            };
            report_exhausted(&phase, &cause, &partial)
        }
        Err(SynthesisError::Checkpoint(e)) => {
            eprintln!("stsyn: checkpoint error: {e}");
            ExitCode::from(EXIT_CHECKPOINT)
        }
        Err(e) => {
            eprintln!("stsyn: synthesis failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn report_exhausted(
    phase: &stsyn_core::Phase,
    cause: &stsyn_symbolic::BddError,
    partial: &stsyn_core::PartialProgress,
) -> ExitCode {
    eprintln!("stsyn: resource budget exhausted during {phase}: {cause}");
    eprintln!(
        "stsyn: partial progress: {} rank layers, {} recovery groups added, \
         {} live BDD nodes, {} ticks (manager {})",
        partial.ranks_layered,
        partial.groups_added.len(),
        partial.live_nodes,
        partial.ticks,
        if partial.manager_consistent { "consistent" } else { "INCONSISTENT" },
    );
    eprintln!("stsyn: raise --timeout / --max-nodes and retry");
    ExitCode::from(EXIT_RESOURCES)
}
