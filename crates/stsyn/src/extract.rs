//! From transition groups back to guarded commands.
//!
//! The heuristic's raw output is a set of groups — one `(readable source
//! valuation, written target valuation)` pair each. Presented verbatim
//! that is unreadable, so this module reconstructs compact Dijkstra-style
//! actions the way the paper presents its synthesized protocols:
//!
//! 1. **Template clustering** — groups of one process are clustered under
//!    a common right-hand-side *template* per written variable: a
//!    constant, a copy of a readable variable, or `(x_r + δ) mod d`.
//!    All three suffice for every case study (e.g. Dijkstra's ring uses
//!    `x_j := x_{j-1}`, i.e. a copy template).
//! 2. **Guard minimization** — each cluster's source valuations are merged
//!    by mixed-radix cube merging (a value-level Quine–McCluskey step):
//!    whenever the terms differing only in one variable cover that
//!    variable's whole domain, they collapse into a wildcard.

use std::collections::BTreeMap;
use stsyn_protocol::action::Action;
use stsyn_protocol::expr::Expr;
use stsyn_protocol::group::GroupDesc;
use stsyn_protocol::topology::{ProcIdx, VarIdx};
use stsyn_protocol::Protocol;

/// A right-hand-side template for one written variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Template {
    /// `w := x_r` (position `r` in the read list). Preferred for display.
    Copy(usize),
    /// `w := (x_r + delta) mod d` with `delta ≠ 0`.
    Shift(usize, u32),
    /// `w := c`.
    Const(u32),
}

impl Template {
    /// Every template consistent with one observation: readable valuation
    /// `pre` producing value `post` for a written variable of domain `d`.
    fn candidates(pre: &[u32], post: u32, d: u32, read_domains: &[u32]) -> Vec<Template> {
        let mut out = vec![Template::Const(post)];
        for (r, &pv) in pre.iter().enumerate() {
            if pv == post {
                out.push(Template::Copy(r));
            }
            // (pv + delta) mod d == post requires pv's value to be taken
            // mod d; only offer shifts between same-domain variables to
            // keep the output natural.
            if read_domains[r] == d {
                let delta = (post + d - (pv % d)) % d;
                if delta != 0 {
                    out.push(Template::Shift(r, delta));
                }
            }
        }
        out
    }

    fn to_expr(self, reads: &[VarIdx], d: u32) -> Expr {
        match self {
            Template::Copy(r) => Expr::var(reads[r]),
            Template::Shift(r, delta) => {
                Expr::var(reads[r]).add(Expr::int(delta as i64)).modulo(Expr::int(d as i64))
            }
            Template::Const(c) => Expr::int(c as i64),
        }
    }
}

/// A guard term over the readable variables: one value or a wildcard per
/// position.
type Term = Vec<Option<u32>>;

/// Merge value-level cubes: whenever terms identical except at one
/// position jointly cover that position's domain, collapse them into a
/// wildcard term. Repeats to a fixpoint; the result covers exactly the
/// same valuation set (each step is exact).
fn merge_terms(mut terms: Vec<Term>, domains: &[u32]) -> Vec<Term> {
    loop {
        terms.sort();
        terms.dedup();
        let mut changed = false;
        'positions: for pos in 0..domains.len() {
            let mut buckets: BTreeMap<Term, Vec<u32>> = BTreeMap::new();
            for t in &terms {
                if let Some(v) = t[pos] {
                    let mut key = t.clone();
                    key[pos] = None;
                    buckets.entry(key).or_default().push(v);
                }
            }
            for (key, mut vals) in buckets {
                vals.sort_unstable();
                vals.dedup();
                if vals.len() == domains[pos] as usize {
                    // Collapse: remove the specific terms, add the wildcard.
                    terms.retain(|t| {
                        !(t[pos].is_some() && {
                            let mut k = t.clone();
                            k[pos] = None;
                            k == key
                        })
                    });
                    terms.push(key);
                    changed = true;
                    break 'positions;
                }
            }
        }
        if !changed {
            return terms;
        }
    }
}

/// One extracted cluster: a guard (set of merged terms) plus one template
/// per written variable.
struct Cluster {
    pres: Vec<Vec<u32>>,
    templates: Vec<Vec<Template>>, // per written var: still-consistent set
}

/// Convert the added groups into minimized guarded commands.
pub fn extract_actions(protocol: &Protocol, added: &[GroupDesc]) -> Vec<Action> {
    let mut actions = Vec::new();
    for j in 0..protocol.num_processes() {
        let proc = &protocol.processes()[j];
        let reads = proc.reads.clone();
        let writes = proc.writes.clone();
        let read_domains: Vec<u32> = reads.iter().map(|r| protocol.vars()[r.0].domain).collect();
        let write_domains: Vec<u32> = writes.iter().map(|w| protocol.vars()[w.0].domain).collect();
        let groups: Vec<&GroupDesc> = added.iter().filter(|g| g.process == ProcIdx(j)).collect();
        if groups.is_empty() {
            continue;
        }
        // Greedy clustering under template consistency.
        let mut clusters: Vec<Cluster> = Vec::new();
        for g in groups {
            let per_write: Vec<Vec<Template>> = writes
                .iter()
                .enumerate()
                .map(|(wi, _)| {
                    Template::candidates(&g.pre, g.post[wi], write_domains[wi], &read_domains)
                })
                .collect();
            let mut placed = false;
            for cl in &mut clusters {
                let narrowed: Vec<Vec<Template>> = cl
                    .templates
                    .iter()
                    .zip(&per_write)
                    .map(|(a, b)| a.iter().copied().filter(|t| b.contains(t)).collect())
                    .collect();
                if narrowed.iter().all(|ts: &Vec<Template>| !ts.is_empty()) {
                    cl.templates = narrowed;
                    cl.pres.push(g.pre.clone());
                    placed = true;
                    break;
                }
            }
            if !placed {
                clusters.push(Cluster { pres: vec![g.pre.clone()], templates: per_write });
            }
        }
        // Emit one action per cluster.
        for (ci, cl) in clusters.iter().enumerate() {
            let terms = merge_terms(
                cl.pres.iter().map(|p| p.iter().map(|&v| Some(v)).collect()).collect(),
                &read_domains,
            );
            let guard = Expr::disj(
                terms
                    .iter()
                    .map(|t| {
                        Expr::conj(
                            t.iter()
                                .enumerate()
                                .filter_map(|(pos, v)| {
                                    v.map(|val| Expr::var(reads[pos]).eq(Expr::int(val as i64)))
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            );
            let assigns: Vec<(VarIdx, Expr)> = writes
                .iter()
                .enumerate()
                .map(|(wi, &w)| {
                    // Prefer Copy > Shift > Const for readability.
                    let t = *cl.templates[wi].iter().min().unwrap();
                    (w, t.to_expr(&reads, write_domains[wi]))
                })
                .collect();
            actions.push(Action::labeled(format!("R{j}_{ci}"), ProcIdx(j), guard, assigns));
        }
    }
    actions
}

/// Assemble `p_ss` as a protocol: `p`'s actions (minus any removed during
/// preprocessing) plus the extracted recovery actions. The result is
/// re-validated by `Protocol::new` via `with_actions`.
pub fn merge_into_protocol(
    p: &Protocol,
    added: &[GroupDesc],
    removed_from_p: &[GroupDesc],
) -> Protocol {
    let mut actions: Vec<Action> = if removed_from_p.is_empty() {
        p.actions().to_vec()
    } else {
        // Re-extract p's surviving groups as actions (rare path).
        let mut surviving = Vec::new();
        for j in 0..p.num_processes() {
            for g in stsyn_protocol::group::groups_of_actions(p, ProcIdx(j)) {
                if !removed_from_p.contains(&g) {
                    surviving.push(g);
                }
            }
        }
        extract_actions(p, &surviving)
    };
    actions.extend(extract_actions(p, added));
    p.with_actions(actions).expect("extracted actions failed validation")
}

/// Human-readable rendering of the recovery actions, one per line, using
/// the protocol's variable and value names.
pub fn describe(protocol: &Protocol, added: &[GroupDesc]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for a in extract_actions(protocol, added) {
        let _ = writeln!(out, "{}", render_action(protocol, &a));
    }
    out
}

/// Render one action with variable/value names.
pub fn render_action(protocol: &Protocol, a: &Action) -> String {
    let guard = render_expr(protocol, &a.guard);
    let assigns: Vec<String> = a
        .assigns
        .iter()
        .map(|(t, e)| format!("{} := {}", protocol.vars()[t.0].name, render_expr(protocol, e)))
        .collect();
    let label = a.label.as_deref().unwrap_or("");
    format!("{label}: {guard}  -->  {}", assigns.join("; "))
}

fn render_expr(protocol: &Protocol, e: &Expr) -> String {
    use stsyn_protocol::expr::{BinOp, UnOp};
    match e {
        Expr::Int(i) => i.to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Var(v) => protocol.vars()[v.0].name.clone(),
        Expr::Un(UnOp::Not, inner) => format!("!({})", render_expr(protocol, inner)),
        Expr::Un(UnOp::Neg, inner) => format!("-({})", render_expr(protocol, inner)),
        Expr::Bin(op, a, b) => {
            // Render `var == const` with the variable's value names.
            if let (BinOp::Eq, Expr::Var(v), Expr::Int(c)) = (op, a.as_ref(), b.as_ref()) {
                let decl = &protocol.vars()[v.0];
                if decl.value_names.is_some() && *c >= 0 && (*c as u32) < decl.domain {
                    return format!("{} == {}", decl.name, decl.value_name(*c as u32));
                }
            }
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Mod => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
                BinOp::Implies => "=>",
                BinOp::Iff => "<=>",
            };
            let (mut l, mut r) = (render_expr(protocol, a), render_expr(protocol, b));
            // Parenthesize additive subexpressions under * and % so the
            // rendering re-parses with the same precedence.
            if matches!(op, BinOp::Mul | BinOp::Mod) {
                if matches!(a.as_ref(), Expr::Bin(BinOp::Add | BinOp::Sub, _, _)) {
                    l = format!("({l})");
                }
                if matches!(b.as_ref(), Expr::Bin(BinOp::Add | BinOp::Sub, _, _)) {
                    r = format!("({r})");
                }
            }
            match op {
                BinOp::And | BinOp::Or | BinOp::Implies | BinOp::Iff => {
                    format!("({l} {sym} {r})")
                }
                _ => format!("{l} {sym} {r}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::topology::{ProcessDecl, VarDecl};

    fn ring3() -> Protocol {
        // One process P1 reading x0, x1, writing x1, domain 3.
        let vars = vec![VarDecl::new("x0", 3), VarDecl::new("x1", 3)];
        let procs =
            vec![ProcessDecl::new("P1", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(1)]).unwrap()];
        Protocol::new(vars, procs, vec![]).unwrap()
    }

    #[test]
    fn merge_terms_collapses_full_domains() {
        // Terms (0,0), (1,0), (2,0) over domains (3,3) → (*, 0).
        let terms = vec![vec![Some(0), Some(0)], vec![Some(1), Some(0)], vec![Some(2), Some(0)]];
        let merged = merge_terms(terms, &[3, 3]);
        assert_eq!(merged, vec![vec![None, Some(0)]]);
    }

    #[test]
    fn merge_terms_cascades() {
        // All nine valuations of (3,3) collapse to the single (*, *) term.
        let mut terms = Vec::new();
        for a in 0..3 {
            for b in 0..3 {
                terms.push(vec![Some(a), Some(b)]);
            }
        }
        let merged = merge_terms(terms, &[3, 3]);
        assert_eq!(merged, vec![vec![None, None]]);
    }

    #[test]
    fn merge_terms_keeps_partial_covers() {
        let terms = vec![vec![Some(0), Some(0)], vec![Some(1), Some(0)]];
        let merged = merge_terms(terms, &[3, 3]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn copy_template_wins_for_dijkstra_style_recovery() {
        // Added groups: (x0=v+1-ish pattern) — the TR pass-2 recovery
        // x1 = x0 + 1 → x1 := x0 for v ∈ {0,1,2}:
        // pre (x0=v, x1=(v+1)%3), post x1 := v.
        let p = ring3();
        let added: Vec<GroupDesc> = (0..3u32)
            .map(|v| GroupDesc { process: ProcIdx(0), pre: vec![v, (v + 1) % 3], post: vec![v] })
            .collect();
        let actions = extract_actions(&p, &added);
        assert_eq!(actions.len(), 1, "one clustered action expected");
        let a = &actions[0];
        // RHS is the copy template x1 := x0.
        assert_eq!(a.assigns, vec![(VarIdx(1), Expr::var(VarIdx(0)))]);
        // Semantics: action applies exactly at the three pre states.
        let domains = [3u32, 3u32];
        for s0 in 0..3u32 {
            for s1 in 0..3u32 {
                let st = vec![s0, s1];
                let expect = s1 == (s0 + 1) % 3;
                assert_eq!(a.enabled(&st), expect, "state {st:?}");
                if expect {
                    assert_eq!(a.apply(&st, &domains).unwrap(), vec![s0, s0]);
                }
            }
        }
    }

    #[test]
    fn const_templates_split_clusters_when_needed() {
        // Two groups with incompatible targets from the same pre set:
        // (0,1) → 0 and (0,2) → 1: Copy fits the first (pre x0=0 → post
        // 0), Const(1)/Shift fit the second; a single cluster survives iff
        // some template matches both — Copy(0) works for g1 only, so the
        // cluster set adapts. Just assert round-trip semantics.
        let p = ring3();
        let added = vec![
            GroupDesc { process: ProcIdx(0), pre: vec![0, 1], post: vec![0] },
            GroupDesc { process: ProcIdx(0), pre: vec![0, 2], post: vec![1] },
        ];
        let actions = extract_actions(&p, &added);
        // Whatever the clustering, the union of action semantics equals
        // the union of group semantics.
        let domains = [3u32, 3u32];
        for s0 in 0..3u32 {
            for s1 in 0..3u32 {
                let st = vec![s0, s1];
                let expected: Vec<Vec<u32>> = added
                    .iter()
                    .filter(|g| g.applies_to(&p, &st))
                    .map(|g| g.apply(&p, &st))
                    .collect();
                let got: Vec<Vec<u32>> =
                    actions.iter().filter_map(|a| a.apply(&st, &domains)).collect();
                let mut e = expected.clone();
                let mut g = got.clone();
                e.sort();
                e.dedup();
                g.sort();
                g.dedup();
                assert_eq!(e, g, "state {st:?}");
            }
        }
    }

    #[test]
    fn merged_protocol_validates() {
        let p = ring3();
        let added = vec![GroupDesc { process: ProcIdx(0), pre: vec![0, 1], post: vec![0] }];
        let pss = merge_into_protocol(&p, &added, &[]);
        assert_eq!(pss.actions().len(), 1);
        assert_eq!(pss.num_processes(), 1);
    }

    #[test]
    fn describe_renders_readably() {
        let p = ring3();
        let added = vec![GroupDesc { process: ProcIdx(0), pre: vec![2, 0], post: vec![2] }];
        let text = describe(&p, &added);
        assert!(text.contains("x0 == 2"), "{text}");
        assert!(text.contains("x1 :="), "{text}");
        assert!(text.contains("-->"), "{text}");
    }

    #[test]
    fn rendering_parenthesizes_modular_arithmetic() {
        let p = ring3();
        let a = Action::labeled(
            "R",
            ProcIdx(0),
            Expr::Bool(true),
            vec![(VarIdx(1), Expr::var(VarIdx(0)).add(Expr::int(2)).modulo(Expr::int(3)))],
        );
        let text = render_action(&p, &a);
        assert!(text.contains("(x0 + 2) % 3"), "{text}");
    }

    #[test]
    fn value_names_used_in_rendering() {
        let vars = vec![
            VarDecl::with_names("m0", &["left", "right", "self"]),
            VarDecl::with_names("m1", &["left", "right", "self"]),
        ];
        let procs =
            vec![ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let added = vec![GroupDesc { process: ProcIdx(0), pre: vec![2, 0], post: vec![0] }];
        let text = describe(&p, &added);
        assert!(text.contains("m0 == self"), "{text}");
        assert!(text.contains("m1 == left"), "{text}");
    }
}
