//! Observability pipeline tests: every record a traced synthesis emits
//! passes the NDJSON schema validator, spans nest well-formed across a
//! full run, the summarizer's Table-1 numbers agree *exactly* with the
//! run's own `SynthesisStats`, and a disabled tracer leaves the
//! synthesized protocol byte-identical to the untraced path.

use stsyn_bdd::Budget;
use stsyn_cases::coloring::coloring;
use stsyn_cases::matching::matching;
use stsyn_core::{AddConvergence, Options, Outcome};
use stsyn_obs::{open_spans, parse_trace, summarize, Json, TraceLevel, Tracer};

fn printed(outcome: &Outcome, invariant: &stsyn_protocol::expr::Expr) -> String {
    let p = outcome.extract_protocol();
    stsyn_protocol::printer::to_dsl("out", &p, invariant)
}

/// Run synthesis with a memory-sink tracer; return the outcome and the
/// schema-validated records.
fn traced_run(problem: &AddConvergence, base: &Options, level: TraceLevel) -> (Outcome, Vec<Json>) {
    let (tracer, sink) = Tracer::memory(level);
    let opts = Options { tracer, ..base.clone() };
    let outcome = problem.synthesize(&opts).unwrap();
    let text = sink.lines().join("\n");
    let records = parse_trace(text.as_bytes()).expect("emitted trace fails schema validation");
    (outcome, records)
}

#[test]
fn every_record_validates_and_spans_nest_over_full_matching_run() {
    let (p, i) = matching(3);
    let problem = AddConvergence::new(p, i).unwrap();
    let (_, records) = traced_run(&problem, &Options::default(), TraceLevel::Debug);
    assert!(!records.is_empty());
    // parse_trace already rejected malformed records, unknown kinds,
    // double-opens and mismatched closes; what remains to check is that
    // every opened span was closed by the end of the run.
    assert_eq!(open_spans(&records), 0, "spans left open at end of run");
    // The run must have produced the structural events the summarizer
    // feeds on.
    for name in ["phase.setup", "phase.ranking", "synthesis.stats", "rank.layer"] {
        assert!(
            records.iter().any(|r| r.get("name").and_then(Json::as_str) == Some(name)),
            "no `{name}` record in the trace"
        );
    }
}

#[test]
fn summarizer_matches_synthesis_stats_exactly() {
    let (p, i) = coloring(5);
    let problem = AddConvergence::new(p, i).unwrap();
    let (outcome, records) = traced_run(&problem, &Options::default(), TraceLevel::Debug);
    let summary = summarize(&records);
    let s = &outcome.stats;

    // Integer columns of the paper's Table 1.
    assert_eq!(summary.stat("max_rank"), Some(s.max_rank as f64));
    assert_eq!(summary.stat("candidates"), Some(s.candidates as f64));
    assert_eq!(summary.stat("groups_added"), Some(s.groups_added as f64));
    assert_eq!(summary.stat("finished_in_pass"), Some(f64::from(s.finished_in_pass)));
    assert_eq!(summary.stat("scc_calls"), Some(s.scc_calls as f64));
    assert_eq!(summary.stat("sccs_found"), Some(s.sccs_found as f64));
    assert_eq!(summary.stat("program_nodes"), Some(s.program_nodes as f64));
    assert_eq!(summary.stat("peak_live_nodes"), Some(s.peak_live_nodes as f64));
    assert_eq!(summary.stat("bdd_ticks"), Some(s.bdd_ticks as f64));

    // Timings round-trip *exactly*: the JSON encoder uses shortest
    // round-trip float formatting, so display → parse is the identity.
    assert_eq!(summary.stat("ranking_secs"), Some(s.ranking_secs()));
    assert_eq!(summary.stat("scc_secs"), Some(s.scc_secs()));
    assert_eq!(summary.stat("total_secs"), Some(s.total_secs()));

    // Per-rank frontier: one rank.layer event per rank, 1..=max_rank.
    let ranks: Vec<u64> = summary.rank_nodes.iter().map(|&(r, _)| r).collect();
    let want: Vec<u64> = (1..=s.max_rank as u64).collect();
    assert_eq!(ranks, want, "rank.layer events do not cover 1..=M");
    assert!(summary.rank_nodes.iter().all(|&(_, n)| n > 0));

    // Per-phase wall times from spans are consistent with the run's own
    // clocks: each phase fits inside the recorded total, and ranking's
    // span covers at least the ranking time the stats recorded.
    for phase in ["phase.setup", "phase.ranking", "phase.recovery"] {
        let secs = summary.phase_secs.get(phase).copied().unwrap();
        assert!(secs <= s.total_secs() + 1e-3, "{phase} span longer than the whole run");
    }
    assert!(summary.phase_secs.get("phase.ranking").copied().unwrap() + 1e-4 >= s.ranking_secs());
}

#[test]
fn disabled_tracer_output_is_byte_identical_to_untraced_path() {
    let (p, i) = matching(3);
    let problem = AddConvergence::new(p, i).unwrap();
    let plain = problem.synthesize(&Options::default()).unwrap();

    // Explicitly-disabled tracer (what the seed path now runs through).
    let opts = Options { tracer: Tracer::disabled(), ..Options::default() };
    let disabled = problem.synthesize(&opts).unwrap();
    assert_eq!(printed(&plain, &i_of(&problem)), printed(&disabled, &i_of(&problem)));
    assert_eq!(plain.added, disabled.added);
    assert_eq!(plain.stats.bdd_ticks, disabled.stats.bdd_ticks);

    // A *recording* tracer must not change the result either — tracing
    // is observation, never behavior.
    let (tracer, _sink) = Tracer::memory(TraceLevel::Debug);
    let traced = problem.synthesize(&Options { tracer, ..Options::default() }).unwrap();
    assert_eq!(printed(&plain, &i_of(&problem)), printed(&traced, &i_of(&problem)));
    assert_eq!(plain.added, traced.added);
    assert_eq!(plain.stats.bdd_ticks, traced.stats.bdd_ticks);
}

fn i_of(problem: &AddConvergence) -> stsyn_protocol::expr::Expr {
    problem.invariant().clone()
}

#[test]
fn budgeted_traced_run_emits_degradation_events_without_changing_results() {
    // A tight node ceiling forces graceful degradation (gc, then sift);
    // those paths emit bdd.degrade / bdd.gc events which must also pass
    // schema validation and must not perturb the outcome.
    let (p, i) = matching(3);
    let problem = AddConvergence::new(p, i).unwrap();
    let plain = problem.synthesize(&Options::default()).unwrap();

    let budget = Budget::unlimited().with_max_nodes(2_000);
    let (tracer, sink) = Tracer::memory(TraceLevel::Debug);
    let opts = Options { budget: Some(budget), tracer, ..Options::default() };
    let traced = match problem.synthesize(&opts) {
        Ok(o) => o,
        // A 2k-node ceiling may legitimately be too tight; the test then
        // still validated every record emitted up to the failure.
        Err(_) => {
            let text = sink.lines().join("\n");
            parse_trace(text.as_bytes()).expect("trace of failed run fails validation");
            return;
        }
    };
    let text = sink.lines().join("\n");
    parse_trace(text.as_bytes()).expect("trace of budgeted run fails validation");
    assert_eq!(plain.added, traced.added);
}
