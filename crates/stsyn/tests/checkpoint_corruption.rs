//! Recovery from corrupted and truncated checkpoints: every trial damages
//! a real checkpoint directory (left by a genuinely interrupted run) and
//! requires `--resume` semantics to degrade to the longest valid journal
//! prefix — typed errors and warnings, never a panic — while still
//! finishing with output bit-identical to an uninterrupted run.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use stsyn_bdd::Budget;
use stsyn_cases::matching::matching;
use stsyn_core::{AddConvergence, Options, Outcome, SynthesisError};
use stsyn_protocol::expr::Expr;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("stsyn-corrupt-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn printed(outcome: &Outcome, invariant: &Expr) -> String {
    stsyn_protocol::printer::to_dsl("out", &outcome.extract_protocol(), invariant)
}

/// Snapshot every file in a checkpoint directory (the lock is gone once
/// the session drops, so this is journal + rank snapshots).
fn snapshot(dir: &Path) -> HashMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (e.file_name().into_string().unwrap(), std::fs::read(e.path()).unwrap())
        })
        .collect()
}

fn restore(dir: &Path, files: &HashMap<String, Vec<u8>>) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    for (name, bytes) in files {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
}

/// Frame boundaries of a journal: offsets after the header and after each
/// `len | crc | payload` frame.
fn frame_boundaries(journal: &[u8]) -> Vec<usize> {
    let mut bounds = vec![12]; // 8-byte magic + 4-byte version
    let mut off = 12;
    while off + 8 <= journal.len() {
        let len = u32::from_le_bytes(journal[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        assert!(off <= journal.len(), "reference journal is itself torn");
        bounds.push(off);
    }
    bounds
}

/// An interrupted checkpointed run on matching(3), plus the canonical
/// uninterrupted output to compare resumes against.
fn interrupted_checkpoint(tag: &str) -> (PathBuf, HashMap<String, Vec<u8>>, String, Expr) {
    let (p, i) = matching(3);
    let problem = AddConvergence::new(p.clone(), i.clone()).unwrap();

    let ref_dir = temp_dir(&format!("{tag}-ref"));
    let huge = Options {
        budget: Some(Budget::unlimited().with_max_ticks(u64::MAX >> 1)),
        ..Options::default()
    };
    let reference = problem.synthesize_resumable(&huge, &ref_dir).unwrap();
    let want = printed(&reference, &i);
    let total = reference.stats.bdd_ticks;
    std::fs::remove_dir_all(&ref_dir).unwrap();

    let dir = temp_dir(tag);
    let inject = Options {
        budget: Some(Budget::unlimited().with_fail_at_tick(total * 3 / 5)),
        ..Options::default()
    };
    match problem.synthesize_resumable(&inject, &dir) {
        Err(SynthesisError::ResourceExhausted { .. }) => {}
        other => panic!("injection did not fire: {:?}", other.map(|_| ())),
    }
    let files = snapshot(&dir);
    assert!(files.contains_key("journal.bin"));
    assert!(
        files.keys().any(|k| k.starts_with("rank-")),
        "interrupted run left no rank snapshots: {:?}",
        files.keys().collect::<Vec<_>>()
    );
    (dir, files, want, i)
}

fn resume_and_check(dir: &Path, i: &Expr, want: &str, what: &str) {
    let (p, inv) = matching(3);
    assert_eq!(&inv, i);
    let problem = AddConvergence::new(p, inv).unwrap();
    let mut resumed = problem
        .synthesize_resumable(&Options::default(), dir)
        .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
    assert_eq!(want, printed(&resumed, i), "{what}: resumed output differs");
    assert!(resumed.verify_strong(), "{what}: re-verification failed");
}

#[test]
fn journal_truncated_at_every_record_boundary_resumes_identically() {
    let (dir, files, want, i) = interrupted_checkpoint("trunc");
    let journal = &files["journal.bin"];
    for &cut in &frame_boundaries(journal) {
        restore(&dir, &files);
        std::fs::write(dir.join("journal.bin"), &journal[..cut]).unwrap();
        resume_and_check(&dir, &i, &want, &format!("truncate at {cut}"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn journal_with_any_flipped_byte_resumes_identically() {
    let (dir, files, want, i) = interrupted_checkpoint("flip");
    let journal = &files["journal.bin"];
    // Every byte would mean thousands of full resumes; a stride of 7 still
    // hits every frame and every field type many times over.
    for pos in (0..journal.len()).step_by(7) {
        restore(&dir, &files);
        let mut corrupt = journal.clone();
        corrupt[pos] ^= 0x40;
        std::fs::write(dir.join("journal.bin"), &corrupt).unwrap();
        resume_and_check(&dir, &i, &want, &format!("flip at {pos}"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_rank_snapshots_are_recomputed_not_trusted() {
    let (dir, files, want, i) = interrupted_checkpoint("rank");
    let rank_files: Vec<&String> = files.keys().filter(|k| k.starts_with("rank-")).collect();
    for name in rank_files {
        let bytes = &files[name];
        // Flip a byte in the middle (node table) and one in the header.
        for pos in [1usize, bytes.len() / 2, bytes.len() - 1] {
            restore(&dir, &files);
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xFF;
            std::fs::write(dir.join(name), &corrupt).unwrap();
            resume_and_check(&dir, &i, &want, &format!("{name} flipped at {pos}"));
        }
        // Delete the snapshot outright.
        restore(&dir, &files);
        std::fs::remove_file(dir.join(name)).unwrap();
        resume_and_check(&dir, &i, &want, &format!("{name} deleted"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_and_garbage_journals_degrade_to_fresh_runs() {
    let (dir, files, want, i) = interrupted_checkpoint("garbage");
    for journal in [&b""[..], &b"NOTAJRNL"[..], &[0xFFu8; 64][..]] {
        restore(&dir, &files);
        std::fs::write(dir.join("journal.bin"), journal).unwrap();
        resume_and_check(&dir, &i, &want, "garbage journal");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
