//! End-to-end smoke tests for crash-safe checkpointing: a checkpointed run
//! is observationally identical to a plain one, an interrupted run resumes
//! to a bit-identical outcome, and the journal records the run's fate.
//! (The exhaustive ≥100-point crash sweep lives in
//! `crates/cases/tests/crash_resume.rs`.)

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use stsyn_bdd::Budget;
use stsyn_cases::matching::matching;
use stsyn_core::{AddConvergence, Options, Outcome, SynthesisError};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("stsyn-ckpt-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn printed(outcome: &Outcome, invariant: &stsyn_protocol::expr::Expr) -> String {
    let p = outcome.extract_protocol();
    stsyn_protocol::printer::to_dsl("out", &p, invariant)
}

fn huge_budget() -> Budget {
    Budget::unlimited().with_max_ticks(u64::MAX >> 1)
}

#[test]
fn checkpointed_run_equals_plain_run() {
    let (p, i) = matching(3);
    let problem = AddConvergence::new(p.clone(), i.clone()).unwrap();
    let plain = problem.synthesize(&Options::default()).unwrap();

    let dir = temp_dir("plain");
    let ckpt = problem.synthesize_resumable(&Options::default(), &dir).unwrap();
    assert_eq!(printed(&plain, &i), printed(&ckpt, &i));
    assert_eq!(plain.added, ckpt.added);
    assert!(dir.join("journal.bin").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interrupted_run_resumes_bit_identical() {
    let (p, i) = matching(3);
    let problem = AddConvergence::new(p.clone(), i.clone()).unwrap();

    // Reference: a checkpointed run under a huge (never-violated) budget,
    // which shares the tick coordinate system with the injected runs.
    let ref_dir = temp_dir("ref");
    let ref_opts = Options { budget: Some(huge_budget()), ..Options::default() };
    let reference = problem.synthesize_resumable(&ref_opts, &ref_dir).unwrap();
    let want = printed(&reference, &i);
    let total = reference.stats.bdd_ticks;
    assert!(total > 0);
    std::fs::remove_dir_all(&ref_dir).unwrap();

    // Kill at a handful of points spread across the run; resume each.
    for frac in [10, 40, 70, 95] {
        let tick = total * frac / 100;
        let dir = temp_dir("kill");
        let inject = Options {
            budget: Some(Budget::unlimited().with_fail_at_tick(tick)),
            ..Options::default()
        };
        match problem.synthesize_resumable(&inject, &dir) {
            Err(SynthesisError::ResourceExhausted { .. }) => {}
            Ok(_) => panic!("tick {tick}: injection did not fire"),
            Err(e) => panic!("tick {tick}: unexpected error {e}"),
        }
        let mut resumed = problem.synthesize_resumable(&Options::default(), &dir).unwrap();
        assert_eq!(want, printed(&resumed, &i), "tick {tick}: output differs");
        assert!(resumed.verify_strong(), "tick {tick}: re-verification failed");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn manager_counters_survive_resume() {
    // PR 5 bugfix: cumulative manager counters (cache probes, gc runs,
    // peak live nodes) are journaled at every checkpoint fence and adopted
    // on resume, so a resumed run's metrics continue the crashed run's
    // series instead of restarting from zero with the rebuilt manager.
    let (p, i) = matching(3);
    let problem = AddConvergence::new(p.clone(), i.clone()).unwrap();
    let dir = temp_dir("counters");
    let mut first = problem.synthesize_resumable(&Options::default(), &dir).unwrap();
    let first_stats = first.ctx().mgr_ref().stats();
    assert!(first_stats.cache_lookups > 0);

    // Resuming the finished journal replays everything on a fresh manager.
    // The replay itself does far less BDD work than the original run, so
    // without counter adoption the resumed run would report *fewer*
    // lookups than the run it replays — the silent reset this fixes.
    let mut replayed = problem.synthesize_resumable(&Options::default(), &dir).unwrap();
    let replayed_stats = replayed.ctx().mgr_ref().stats();
    assert!(
        replayed_stats.cache_lookups >= first_stats.cache_lookups,
        "resume reset cache_lookups: {} < {}",
        replayed_stats.cache_lookups,
        first_stats.cache_lookups
    );
    assert!(replayed_stats.cache_hits >= first_stats.cache_hits);
    // Peak-live is compared against the journal's own fence value in the
    // checkpoint unit tests; the first run's *final* peak can exceed every
    // fence (work after the last journaled step still raises it).
    assert!(replayed_stats.peak_live_nodes > 0);
    std::fs::remove_dir_all(&dir).unwrap();

    // Same guarantee across a mid-run crash: kill at ~half the reference
    // ticks, resume, and require the continued series to cover at least
    // the work the killed run had journaled by its last fence.
    let ref_dir = temp_dir("counters-ref");
    let ref_opts = Options { budget: Some(huge_budget()), ..Options::default() };
    let reference = problem.synthesize_resumable(&ref_opts, &ref_dir).unwrap();
    let total = reference.stats.bdd_ticks;
    std::fs::remove_dir_all(&ref_dir).unwrap();
    let dir = temp_dir("counters-kill");
    let inject = Options {
        budget: Some(Budget::unlimited().with_fail_at_tick(total / 2)),
        ..Options::default()
    };
    assert!(problem.synthesize_resumable(&inject, &dir).is_err());
    let mut resumed = problem.synthesize_resumable(&Options::default(), &dir).unwrap();
    let resumed_stats = resumed.ctx().mgr_ref().stats();
    assert!(
        resumed_stats.cache_lookups > 0 && resumed_stats.cache_hits > 0,
        "resumed run lost its counter series"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fresh_run_refuses_populated_directory() {
    let (p, i) = matching(3);
    let problem = AddConvergence::new(p, i).unwrap();
    let dir = temp_dir("refuse");
    problem.synthesize_resumable(&Options::default(), &dir).unwrap();
    let again = problem.synthesize_resumable_with(
        &Options::default(),
        problem.default_schedule(),
        &dir,
        false,
    );
    match again {
        Err(SynthesisError::Checkpoint(stsyn_core::CheckpointError::Exists)) => {}
        Err(e) => panic!("expected Exists, got {e}"),
        Ok(_) => panic!("expected Exists, got success"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_of_completed_run_replays_to_same_outcome() {
    let (p, i) = matching(3);
    let problem = AddConvergence::new(p.clone(), i.clone()).unwrap();
    let dir = temp_dir("done");
    let first = problem.synthesize_resumable(&Options::default(), &dir).unwrap();
    // Resuming a finished journal replays everything and recomputes
    // nothing that would change the outcome.
    let replayed = problem.synthesize_resumable(&Options::default(), &dir).unwrap();
    assert_eq!(printed(&first, &i), printed(&replayed, &i));
    std::fs::remove_dir_all(&dir).unwrap();
}
