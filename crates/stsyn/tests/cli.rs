//! End-to-end tests of the `stsyn` command-line tool, driving the real
//! binary the way a user would.

use std::path::PathBuf;
use std::process::Command;

fn stsyn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stsyn"))
}

/// A protocol file in a fresh temp dir; returns (dir, path).
fn write_protocol(name: &str, body: &str) -> (tempdir::TempDir, PathBuf) {
    let dir = tempdir::TempDir::new(name);
    let path = dir.path.join(format!("{name}.stsyn"));
    std::fs::write(&path, body).unwrap();
    (dir, path)
}

/// Minimal self-cleaning temp dir (no external crate).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempDir {
        pub path: PathBuf,
    }

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "stsyn-cli-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

const RAMP: &str = r#"
    protocol Ramp {
      var c : 0..3;
      process P0 reads c writes c { }
      invariant c == 3;
    }
"#;

#[test]
fn synthesizes_a_file_and_reports_success() {
    let (_dir, path) = write_protocol("ramp", RAMP);
    let out = stsyn().arg(&path).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verification: PASS"), "{stdout}");
    assert!(stdout.contains("recovery actions added"), "{stdout}");
    assert!(stdout.contains("statistics:"), "{stdout}");
}

#[test]
fn quiet_suppresses_statistics() {
    let (_dir, path) = write_protocol("quiet", RAMP);
    let out = stsyn().arg(&path).arg("--quiet").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("statistics:"), "{stdout}");
}

#[test]
fn weak_mode_reports_weak_stabilization() {
    let (_dir, path) = write_protocol("weak", RAMP);
    let out = stsyn().arg(&path).arg("--weak").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("weak stabilization"), "{stdout}");
    assert!(stdout.contains("verification: PASS"), "{stdout}");
}

#[test]
fn emit_dsl_writes_a_reparsable_stabilizing_protocol() {
    let (dir, path) = write_protocol("emit", RAMP);
    let out_path = dir.path.join("out.stsyn");
    let out = stsyn().arg(&path).arg("--quiet").arg("--emit-dsl").arg(&out_path).output().unwrap();
    assert!(out.status.success());
    let emitted = std::fs::read_to_string(&out_path).unwrap();
    assert!(emitted.starts_with("protocol Ramp_SS"), "{emitted}");
    // Feeding the emitted file back: already stabilizing, still passes.
    let again = stsyn().arg(&out_path).arg("--quiet").output().unwrap();
    assert!(again.status.success());
    let stdout = String::from_utf8_lossy(&again.stdout);
    assert!(stdout.contains("no recovery needed"), "{stdout}");
}

#[test]
fn parse_errors_exit_nonzero_with_location() {
    let (_dir, path) = write_protocol("bad", "protocol Bad {\n  var a @ 0..1;\n}");
    let out = stsyn().arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn unclosed_invariant_fails_with_explanation() {
    let src = r#"
        protocol Escape {
          var a : 0..2;
          process P0 reads a writes a {
            when a == 0 then a := 1;
          }
          invariant a == 0;
        }
    "#;
    let (_dir, path) = write_protocol("escape", src);
    let out = stsyn().arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("closed"), "{stderr}");
}

#[test]
fn explicit_schedule_is_used() {
    let (_dir, path) = write_protocol("sched", RAMP);
    let out = stsyn().arg(&path).arg("--schedule").arg("0").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(P0)"), "{stdout}");
}

#[test]
fn missing_file_fails_gracefully() {
    let out = stsyn().arg("/nonexistent/path.stsyn").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
