//! # stsyn-repro — umbrella crate
//!
//! This workspace reproduces *"A Lightweight Method for Automated Design of
//! Convergence"* (Ebnenasir & Farahat, IPDPS 2011). The umbrella crate
//! re-exports the member crates so the runnable `examples/` and the
//! cross-crate `tests/` have one coherent import surface:
//!
//! * [`bdd`] — the symbolic substrate (replaces CUDD/GLU),
//! * [`protocol`] — finite-state shared-memory protocols, transition
//!   groups, the textual DSL and the explicit-state oracle engine,
//! * [`symbolic`] — BDD encodings, ranks, SCCs and convergence checking,
//! * [`synth`] — the STSyn synthesis heuristic itself,
//! * [`cases`] — the paper's four case-study protocols.

pub use stsyn_bdd as bdd;
pub use stsyn_cases as cases;
pub use stsyn_core as synth;
pub use stsyn_protocol as protocol;
pub use stsyn_symbolic as symbolic;
