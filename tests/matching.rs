//! §VI-A end-to-end: synthesis of maximal matching, the properties the
//! paper reports about it, and the symbolic confirmation of the
//! Gouda–Acharya flaw.

use stsyn_repro::cases::{gouda_acharya_matching, matching, MATCH_LEFT, MATCH_SELF};
use stsyn_repro::protocol::explicit::check_convergence;
use stsyn_repro::symbolic::scc::has_cycle;
use stsyn_repro::symbolic::SymbolicContext;
use stsyn_repro::synth::{AddConvergence, Options};

#[test]
fn matching_synthesizes_and_verifies() {
    for k in [5usize, 6, 7] {
        let (p, i) = matching(k);
        let problem = AddConvergence::new(p, i.clone()).unwrap();
        let mut outcome = problem.synthesize(&Options::default()).unwrap();
        assert!(outcome.verify_strong(), "K = {k}");
        assert!(outcome.preserves_i_behavior(), "K = {k}");
        // The explicit oracle agrees with the symbolic verdict.
        let pss = outcome.extract_protocol();
        let report = check_convergence(&pss, &i);
        assert!(report.strongly_converges(), "explicit check K = {k}");
    }
}

#[test]
fn synthesized_matching_is_silent_in_i() {
    // In I_MM the synthesized protocol must be silent (the paper: "The MM
    // protocol is silent in I_MM"): the input has no actions and recovery
    // can never originate in I (constraint C1).
    let (p, i) = matching(5);
    let problem = AddConvergence::new(p, i.clone()).unwrap();
    let outcome = problem.synthesize(&Options::default()).unwrap();
    let pss = outcome.extract_protocol();
    for s in pss.space().states() {
        if i.holds(&s) {
            assert!(pss.successors(&s).is_empty(), "not silent at {s:?}");
        }
    }
}

#[test]
fn matching_synthesis_needs_cycle_resolution() {
    // Matching is non-locally correctable: the run must actually detect
    // and resolve SCCs (unlike coloring, where none form) — the paper's
    // §VII explanation for the scalability gap.
    let (p, i) = matching(5);
    let problem = AddConvergence::new(p, i).unwrap();
    let outcome = problem.synthesize(&Options::default()).unwrap();
    assert!(outcome.stats.sccs_found > 0, "expected SCC resolutions");
}

#[test]
fn synthesized_matching_is_asymmetric() {
    // §VI-A: the synthesized protocol is asymmetric, unlike the manual
    // one. Compare the local action tables of two processes by relabeling
    // indices: if the protocol were symmetric, P1's groups mapped to P2's
    // locality would equal P2's groups.
    let (p, i) = matching(5);
    let problem = AddConvergence::new(p, i).unwrap();
    let outcome = problem.synthesize(&Options::default()).unwrap();
    use std::collections::HashSet;
    // Collect per-process (pre, post) tables over the *rotated* reads.
    let tables: Vec<HashSet<(Vec<u32>, Vec<u32>)>> = (0..5)
        .map(|j| {
            outcome
                .added
                .iter()
                .filter(|g| g.process.0 == j)
                .map(|g| {
                    // reads are sorted by variable index; re-order them as
                    // (left, self, right) relative to process j so tables
                    // are comparable across processes.
                    let reads = &outcome.protocol().processes()[j].reads;
                    let left = (j + 4) % 5;
                    let own = j;
                    let right = (j + 1) % 5;
                    let pick = |v: usize| {
                        let pos = reads
                            .iter()
                            .position(|r| r.0 == v)
                            .expect("neighbour variable readable");
                        g.pre[pos]
                    };
                    ((vec![pick(left), pick(own), pick(right)]), g.post.clone())
                })
                .collect()
        })
        .collect();
    let all_equal = tables.windows(2).all(|w| w[0] == w[1]);
    assert!(!all_equal, "paper reports an asymmetric synthesized protocol");
}

#[test]
fn gouda_acharya_flaw_confirmed_symbolically() {
    // The unit tests confirm the flaw with the explicit engine; here the
    // *symbolic* machinery does it, like STSyn would.
    let (p, i_expr) = gouda_acharya_matching(5);
    let mut ctx = SymbolicContext::new(p);
    let t = ctx.protocol_relation();
    let i = ctx.compile(&i_expr);
    let not_i = ctx.not_states(i);
    let restricted = ctx.restrict_relation(t, not_i);
    assert!(has_cycle(&mut ctx, restricted, not_i), "non-progress cycle outside I_MM");
    // The paper's witness state is inside the cyclic region's backward
    // closure of the cycle core — check it can reach a cycle.
    let witness_state = vec![MATCH_LEFT, MATCH_SELF, MATCH_LEFT, MATCH_SELF, MATCH_LEFT];
    let witness = ctx.singleton(&witness_state);
    let fwd = ctx.forward_closure(restricted, witness);
    assert!(has_cycle(&mut ctx, restricted, fwd), "witness reaches a ¬I cycle");
}
