//! §VI-B end-to-end: three-coloring synthesis — the locally-correctable,
//! scalable case study.

use stsyn_repro::cases::coloring;
use stsyn_repro::protocol::explicit::check_convergence;
use stsyn_repro::synth::{AddConvergence, Options};

#[test]
fn coloring_synthesizes_and_verifies() {
    for k in [3usize, 5, 8] {
        let (p, i) = coloring(k);
        let problem = AddConvergence::new(p, i.clone()).unwrap();
        let mut outcome = problem.synthesize(&Options::default()).unwrap();
        assert!(outcome.verify_strong(), "K = {k}");
        assert!(outcome.preserves_i_behavior(), "K = {k}");
        let pss = outcome.extract_protocol();
        let report = check_convergence(&pss, &i);
        assert!(report.strongly_converges(), "explicit check K = {k}");
    }
}

#[test]
fn coloring_creates_no_sccs() {
    // §VII: because coloring is locally correctable, the added recovery
    // never forms an SCC outside I — the structural reason synthesis
    // scales to 40 processes.
    for k in [5usize, 10] {
        let (p, i) = coloring(k);
        let problem = AddConvergence::new(p, i).unwrap();
        let outcome = problem.synthesize(&Options::default()).unwrap();
        assert_eq!(outcome.stats.sccs_found, 0, "K = {k}");
    }
}

#[test]
fn synthesized_moves_pick_proper_colors() {
    // Every recovery move results in the moving process differing from
    // both neighbours — the semantic core of `other(c_left, c_right)`.
    let (p, i) = coloring(5);
    let problem = AddConvergence::new(p, i).unwrap();
    let outcome = problem.synthesize(&Options::default()).unwrap();
    for g in &outcome.added {
        let j = g.process.0;
        let reads = &outcome.protocol().processes()[j].reads;
        let left = (j + 4) % 5;
        let right = (j + 1) % 5;
        let pos = |v: usize| reads.iter().position(|r| r.0 == v).unwrap();
        let new_color = g.post[0];
        assert_ne!(new_color, g.pre[pos(left)], "move clashes with left neighbour: {g:?}");
        assert_ne!(new_color, g.pre[pos(right)], "move clashes with right neighbour: {g:?}");
    }
}

#[test]
fn coloring_converges_from_every_state_in_simulation() {
    // Drive the extracted protocol from every illegitimate state of the
    // K = 4 instance and count convergence steps.
    let (p, i) = coloring(4);
    let problem = AddConvergence::new(p, i.clone()).unwrap();
    let outcome = problem.synthesize(&Options::default()).unwrap();
    let pss = outcome.extract_protocol();
    for start in pss.space().states() {
        let mut s = start.clone();
        let mut steps = 0;
        while !i.holds(&s) {
            let succs = pss.successors(&s);
            assert!(!succs.is_empty(), "deadlock at {s:?} from {start:?}");
            // Adversarial scheduler: always pick the last successor.
            s = succs.into_iter().last().unwrap();
            steps += 1;
            assert!(steps <= 81, "no convergence from {start:?}");
        }
    }
}

#[test]
fn coloring_sweep_matches_paper_shape() {
    // Time grows with K but every instance verifies; ranks stay small
    // relative to K (recovery is local).
    let mut prev_added = 0;
    for k in [4usize, 6, 8, 10] {
        let (p, i) = coloring(k);
        let problem = AddConvergence::new(p, i).unwrap();
        let outcome = problem.synthesize(&Options::default()).unwrap();
        assert!(outcome.stats.groups_added > prev_added, "more work for larger K");
        prev_added = outcome.stats.groups_added;
        assert!(outcome.stats.finished_in_pass <= 2, "coloring needs no pass 3");
    }
}
