//! The paper's case-study table (Fig. 5): which protocols are locally
//! correctable. Coloring: yes; matching, token ring, two-ring: no.

use stsyn_repro::cases::{coloring, matching, token_ring, two_ring};
use stsyn_repro::synth::analysis::{local_correctability, LocalCorrectability};

#[test]
fn table1_coloring_yes() {
    let (p, i) = coloring(5);
    assert_eq!(local_correctability(&p, &i), LocalCorrectability::Yes);
}

#[test]
fn table1_matching_no() {
    // I_MM *is* a conjunction of local predicates, but local repairs
    // interfere (§VII's analysis of why matching is harder than coloring).
    let (p, i) = matching(5);
    assert_eq!(local_correctability(&p, &i), LocalCorrectability::NotCorrectable);
}

#[test]
fn table1_token_ring_no() {
    // S1 does not even decompose into per-locality conjuncts: the
    // conjunction of its projections admits multi-token states.
    let (p, i) = token_ring(4, 3);
    assert_eq!(local_correctability(&p, &i), LocalCorrectability::NoDecomposition);
}

#[test]
fn table1_two_ring_no() {
    // With only two processes per ring, PA0/PB0 read every variable, so
    // the invariant trivially decomposes over their (global) localities —
    // the verdict is then NotCorrectable rather than NoDecomposition.
    // Either way the table entry is "No".
    let (p, i) = two_ring(2, 3);
    assert_ne!(local_correctability(&p, &i), LocalCorrectability::Yes);
}
