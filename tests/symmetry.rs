//! Symmetry-enforcing synthesis (§VIII): recovery added orbit-atomically
//! under the ring rotation yields protocols that are symmetric *by
//! construction* — including a correct symmetric maximal matching, where
//! the published manual symmetric design (Gouda–Acharya) harbours a
//! non-progress cycle.

use std::collections::HashSet;
use stsyn_repro::cases::{coloring, matching};
use stsyn_repro::protocol::explicit::check_convergence;
use stsyn_repro::synth::symmetry::Symmetry;
use stsyn_repro::synth::{AddConvergence, Options};

fn symmetric_options(p: &stsyn_repro::protocol::Protocol) -> Options {
    Options {
        symmetry: Some(Symmetry::ring_rotation(p).expect("ring topology")),
        ..Options::default()
    }
}

/// The added group set must be closed under the rotation orbit.
fn assert_orbit_closed(outcome: &stsyn_repro::synth::Outcome, sym: &Symmetry) {
    let p = outcome.protocol().clone();
    let added: HashSet<_> = outcome.added.iter().cloned().collect();
    for g in &outcome.added {
        for member in sym.orbit(&p, g) {
            assert!(
                added.contains(&member),
                "orbit of {g:?} not fully included: missing {member:?}"
            );
        }
    }
}

#[test]
fn symmetric_coloring_verifies_and_is_orbit_closed() {
    let (p, i) = coloring(5);
    let sym = Symmetry::ring_rotation(&p).unwrap();
    let problem = AddConvergence::new(p.clone(), i.clone()).unwrap();
    let mut outcome = problem.synthesize(&symmetric_options(&p)).unwrap();
    assert!(outcome.verify_strong());
    assert!(outcome.preserves_i_behavior());
    assert_orbit_closed(&outcome, &sym);
    let pss = outcome.extract_protocol();
    assert!(check_convergence(&pss, &i).strongly_converges());
}

#[test]
fn symmetric_matching_exists_and_verifies() {
    // The headline of this extension: a *symmetric* self-stabilizing
    // maximal matching on a 5-ring exists and the orbit-atomic heuristic
    // finds it — in contrast to the flawed manual symmetric protocol.
    let (p, i) = matching(5);
    let sym = Symmetry::ring_rotation(&p).unwrap();
    let problem = AddConvergence::new(p.clone(), i.clone()).unwrap();
    let mut outcome = problem.synthesize(&symmetric_options(&p)).unwrap();
    assert!(outcome.verify_strong());
    assert!(outcome.preserves_i_behavior());
    assert_orbit_closed(&outcome, &sym);
    // Every process carries the same number of recovery groups.
    let mut per_proc = vec![0usize; 5];
    for g in &outcome.added {
        per_proc[g.process.0] += 1;
    }
    assert!(per_proc.windows(2).all(|w| w[0] == w[1]), "{per_proc:?}");
    let pss = outcome.extract_protocol();
    assert!(check_convergence(&pss, &i).strongly_converges());
}

#[test]
fn symmetric_tables_are_rotations_of_each_other() {
    let (p, i) = matching(5);
    let problem = AddConvergence::new(p.clone(), i).unwrap();
    let outcome = problem.synthesize(&symmetric_options(&p)).unwrap();
    // Normalize each process's groups to (left, self, right) order and
    // compare the tables — they must all coincide.
    let tables: Vec<HashSet<(Vec<u32>, Vec<u32>)>> = (0..5)
        .map(|j| {
            outcome
                .added
                .iter()
                .filter(|g| g.process.0 == j)
                .map(|g| {
                    let reads = &p.processes()[j].reads;
                    let left = (j + 4) % 5;
                    let right = (j + 1) % 5;
                    let pick = |v: usize| g.pre[reads.iter().position(|r| r.0 == v).unwrap()];
                    (vec![pick(left), pick(j), pick(right)], g.post.clone())
                })
                .collect()
        })
        .collect();
    assert!(
        tables.windows(2).all(|w| w[0] == w[1]),
        "symmetric mode must produce identical local tables"
    );
}

#[test]
fn plain_mode_remains_asymmetric_for_matching() {
    // Sanity contrast: without the symmetry option the same instance
    // produces asymmetric tables (checked in tests/matching.rs) but with
    // fewer groups — symmetry costs generality.
    let (p, i) = matching(5);
    let problem = AddConvergence::new(p, i).unwrap();
    let plain = problem.synthesize(&Options::default()).unwrap();
    let (p2, i2) = matching(5);
    let problem2 = AddConvergence::new(p2.clone(), i2).unwrap();
    let symmetric = problem2.synthesize(&symmetric_options(&p2)).unwrap();
    assert!(symmetric.stats.groups_added >= plain.stats.groups_added);
}
