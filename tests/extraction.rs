//! Extraction correctness: the guarded commands reconstructed from the
//! added groups must denote *exactly* the synthesized relation — not just
//! a stabilizing superset/subset.

use stsyn_repro::cases::{coloring, matching, token_ring, two_ring};
use stsyn_repro::protocol::explicit::ExplicitGraph;
use stsyn_repro::protocol::{Expr, Protocol};
use stsyn_repro::synth::{AddConvergence, Options, Outcome};

/// Compare the extracted protocol's explicit transition graph against the
/// symbolic `p_ss` relation, state by state.
fn assert_exact_extraction(mut outcome: Outcome) {
    let pss_protocol = outcome.extract_protocol();
    let graph = ExplicitGraph::of_protocol(&pss_protocol);
    let space = pss_protocol.space().clone();
    let relation = outcome.pss;
    let ctx = outcome.ctx();
    for (sid, s) in space.states().enumerate() {
        let cube = ctx.singleton(&s);
        let image = ctx.img(relation, cube);
        // Explicit successors of the extracted protocol.
        let mut explicit: Vec<u64> =
            graph.successors(sid as u64).iter().map(|&t| t as u64).collect();
        explicit.sort_unstable();
        // Symbolic successors enumerated by membership test.
        let mut symbolic: Vec<u64> = Vec::new();
        for (tid, t) in space.states().enumerate() {
            let tcube = ctx.singleton(&t);
            if !ctx.mgr().and(tcube, image).is_false() {
                symbolic.push(tid as u64);
            }
        }
        assert_eq!(explicit, symbolic, "successor mismatch at {s:?}");
    }
}

fn synthesize(p: Protocol, i: Expr) -> Outcome {
    AddConvergence::new(p, i).unwrap().synthesize(&Options::default()).unwrap()
}

#[test]
fn token_ring_extraction_is_exact() {
    let (p, i) = token_ring(4, 3);
    assert_exact_extraction(synthesize(p, i));
}

#[test]
fn matching_extraction_is_exact() {
    let (p, i) = matching(5);
    assert_exact_extraction(synthesize(p, i));
}

#[test]
fn coloring_extraction_is_exact() {
    let (p, i) = coloring(5);
    assert_exact_extraction(synthesize(p, i));
}

#[test]
fn two_ring_extraction_is_exact() {
    let (p, i) = two_ring(2, 3);
    assert_exact_extraction(synthesize(p, i));
}

#[test]
fn emitted_dsl_reparses_to_the_same_protocol() {
    // extract → print → parse → explicit-graph equality.
    let (p, i) = token_ring(4, 3);
    let outcome = synthesize(p, i.clone());
    let pss = outcome.extract_protocol();
    let text = stsyn_repro::protocol::printer::to_dsl("TR_SS", &pss, &i);
    let reparsed = stsyn_repro::protocol::dsl::parse(&text)
        .unwrap_or_else(|e| panic!("emitted DSL failed to parse: {e}\n{text}"));
    for s in pss.space().states() {
        let mut a = pss.successors(&s);
        let mut b = reparsed.protocol.successors(&s);
        a.sort();
        b.sort();
        assert_eq!(a, b, "round-trip changed behaviour at {s:?}");
        assert_eq!(i.holds(&s), reparsed.invariant.holds(&s));
    }
}
