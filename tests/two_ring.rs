//! §VI-C end-to-end: the Two-Ring Token Ring.

use stsyn_repro::cases::two_ring;
use stsyn_repro::protocol::explicit::check_convergence;
use stsyn_repro::synth::{AddConvergence, Options};

#[test]
fn two_ring_synthesizes_and_verifies() {
    for (r, d) in [(2usize, 2u32), (2, 3), (3, 2)] {
        let (p, i) = two_ring(r, d);
        let problem = AddConvergence::new(p, i.clone()).unwrap();
        let mut outcome = problem.synthesize(&Options::default()).unwrap();
        assert!(outcome.verify_strong(), "r = {r}, d = {d}");
        assert!(outcome.preserves_i_behavior(), "r = {r}, d = {d}");
        let pss = outcome.extract_protocol();
        let report = check_convergence(&pss, &i);
        assert!(report.strongly_converges(), "explicit check r = {r}, d = {d}");
    }
}

#[test]
fn two_ring_requires_cycle_resolution() {
    // TR² is non-locally correctable: cycle resolution fires.
    let (p, i) = two_ring(3, 3);
    let problem = AddConvergence::new(p, i).unwrap();
    let outcome = problem.synthesize(&Options::default()).unwrap();
    assert!(outcome.stats.sccs_found > 0);
}

#[test]
fn recovery_restores_single_token_and_turn_consistency() {
    use stsyn_repro::cases::two_ring::token;
    let (p, i) = two_ring(3, 3);
    let problem = AddConvergence::new(p, i.clone()).unwrap();
    let outcome = problem.synthesize(&Options::default()).unwrap();
    let pss = outcome.extract_protocol();
    // From a heavily corrupted state, run to convergence and check exactly
    // one token remains.
    let mut s = vec![2, 0, 1, 1, 2, 0, 0]; // a=(2,0,1) b=(1,2,0) turn=B
    let mut steps = 0;
    while !i.holds(&s) {
        let succs = pss.successors(&s);
        assert!(!succs.is_empty(), "deadlock at {s:?}");
        s = succs.into_iter().next().unwrap();
        steps += 1;
        assert!(steps < 2000);
    }
    let tokens = (0..6).filter(|&j| token(3, 3, j).holds(&s)).count();
    assert_eq!(tokens, 1, "converged state {s:?} must hold exactly one token");
}
