//! Property-based differential tests: every symbolic computation is
//! checked against the explicit-state oracle on randomly generated
//! protocols, and every synthesis outcome is re-verified both symbolically
//! and explicitly.

// Property tests need the external `proptest` crate, which is not
// available offline; opt in with `--features proptest` after restoring the
// dev-dependency (see Cargo.toml).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use stsyn_repro::protocol::action::Action;
use stsyn_repro::protocol::explicit::{predicate_states, ExplicitGraph, StateSet};
use stsyn_repro::protocol::topology::{ProcessDecl, VarDecl};
use stsyn_repro::protocol::{Expr, ProcIdx, Protocol, VarIdx};
use stsyn_repro::symbolic::scc::{scc_decomposition, SccAlgorithm};
use stsyn_repro::symbolic::{compute_ranks, SymbolicContext};
use stsyn_repro::synth::{AddConvergence, Options, Schedule, SynthesisError};

/// A small random protocol description, produced by the proptest
/// strategies below and assembled into a real `Protocol`.
#[derive(Debug, Clone)]
struct RandomProtocol {
    domains: Vec<u32>,
    /// For each process: (reads bitmask, writes bitmask ⊆ reads).
    localities: Vec<(u8, u8)>,
    /// For each action: (process, guard literals (var, val), assignments
    /// (write-slot, source: None = constant `val`, Some(read-slot) = copy
    /// of that readable variable modulo the target domain), val).
    actions: Vec<(usize, Vec<(usize, u32)>, usize, Option<usize>, u32)>,
    /// Invariant: a disjunction of conjunctions of `var == val` literals.
    invariant: Vec<Vec<(usize, u32)>>,
}

impl RandomProtocol {
    fn build(&self) -> Option<(Protocol, Expr)> {
        let nvars = self.domains.len();
        let vars: Vec<VarDecl> = self
            .domains
            .iter()
            .enumerate()
            .map(|(i, &d)| VarDecl::new(format!("v{i}"), d))
            .collect();
        let mut procs = Vec::new();
        for (j, &(rmask, wmask)) in self.localities.iter().enumerate() {
            let reads: Vec<VarIdx> =
                (0..nvars).filter(|i| rmask >> i & 1 == 1).map(VarIdx).collect();
            let writes: Vec<VarIdx> =
                (0..nvars).filter(|i| (wmask & rmask) >> i & 1 == 1).map(VarIdx).collect();
            if reads.is_empty() || writes.is_empty() {
                return None;
            }
            procs.push(ProcessDecl::new(format!("P{j}"), reads, writes).ok()?);
        }
        let mut actions = Vec::new();
        for (pj, guard_lits, wslot, src, val) in &self.actions {
            let pj = pj % procs.len();
            let proc = &procs[pj];
            let guard = Expr::conj(
                guard_lits
                    .iter()
                    .map(|&(slot, v)| {
                        let var = proc.reads[slot % proc.reads.len()];
                        Expr::var(var).eq(Expr::int((v % self.domains[var.0]) as i64))
                    })
                    .collect(),
            );
            let target = proc.writes[wslot % proc.writes.len()];
            let d = self.domains[target.0] as i64;
            let rhs = match src {
                Some(rslot) => {
                    let from = proc.reads[rslot % proc.reads.len()];
                    Expr::var(from).modulo(Expr::int(d))
                }
                None => Expr::int((*val as i64) % d),
            };
            actions.push(Action::new(ProcIdx(pj), guard, vec![(target, rhs)]));
        }
        let invariant = Expr::disj(
            self.invariant
                .iter()
                .map(|conj| {
                    Expr::conj(
                        conj.iter()
                            .map(|&(vi, val)| {
                                let vi = vi % nvars;
                                Expr::var(VarIdx(vi)).eq(Expr::int((val % self.domains[vi]) as i64))
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        let p = Protocol::new(vars, procs, actions).ok()?;
        Some((p, invariant))
    }
}

fn arb_protocol(max_actions: usize) -> impl Strategy<Value = RandomProtocol> {
    (
        proptest::collection::vec(2u32..=3, 2..=3),
        proptest::collection::vec((1u8..8, 1u8..8), 1..=3),
        proptest::collection::vec(
            (
                0usize..3,
                proptest::collection::vec((0usize..3, 0u32..3), 0..=2),
                0usize..3,
                proptest::option::of(0usize..3),
                0u32..3,
            ),
            0..=max_actions,
        ),
        proptest::collection::vec(proptest::collection::vec((0usize..3, 0u32..3), 1..=2), 1..=2),
    )
        .prop_map(|(domains, localities, actions, invariant)| RandomProtocol {
            domains,
            localities,
            actions,
            invariant,
        })
}

/// Explicit-state rank of every state, for comparison.
fn explicit_ranks(p: &Protocol, i: &Expr) -> Vec<u32> {
    let g = ExplicitGraph::of_protocol(p);
    let target = predicate_states(p, i);
    g.backward_ranks(&target)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn symbolic_ranks_match_explicit_bfs(rp in arb_protocol(6)) {
        let Some((p, i_expr)) = rp.build() else { return Ok(()); };
        let explicit = explicit_ranks(&p, &i_expr);
        let mut ctx = SymbolicContext::new(p.clone());
        let t = ctx.protocol_relation();
        let i = ctx.compile(&i_expr);
        let table = compute_ranks(&mut ctx, t, i);
        for (id, s) in p.space().states().enumerate() {
            let cube = ctx.state_cube(&s);
            let symbolic = (0..=table.max_rank())
                .find(|&r| {
                    let pred = table.rank(r);
                    !ctx.mgr().and(cube, pred).is_false()
                })
                .map(|r| r as u32)
                .unwrap_or(u32::MAX);
            // Explicit BFS ranks count I-states as rank 0 even if
            // unreachable... both engines use the same convention.
            prop_assert_eq!(symbolic, explicit[id], "state {:?}", s);
        }
    }

    #[test]
    fn symbolic_sccs_match_tarjan(rp in arb_protocol(8)) {
        let Some((p, _)) = rp.build() else { return Ok(()); };
        let graph = ExplicitGraph::of_protocol(&p);
        let n = graph.num_states();
        // Explicit non-trivial SCC partition as a canonical set of sets.
        let (comp, ncomp) = graph.tarjan_scc();
        let mut members: Vec<Vec<u64>> = vec![Vec::new(); ncomp];
        for s in 0..n {
            members[comp[s] as usize].push(s as u64);
        }
        let mut explicit: Vec<Vec<u64>> = members
            .into_iter()
            .filter(|m| {
                m.len() > 1
                    || (m.len() == 1 && graph.successors(m[0]).contains(&(m[0] as u32)))
            })
            .collect();
        explicit.sort();

        let mut ctx = SymbolicContext::new(p.clone());
        let t = ctx.protocol_relation();
        let all = ctx.all_states();
        for algo in [SccAlgorithm::Skeleton, SccAlgorithm::Lockstep, SccAlgorithm::XieBeerel] {
            let sccs = scc_decomposition(&mut ctx, t, all, algo);
            let mut symbolic: Vec<Vec<u64>> = sccs
                .iter()
                .map(|&scc| {
                    let mut states = Vec::new();
                    for (id, s) in p.space().states().enumerate() {
                        let cube = ctx.state_cube(&s);
                        if !ctx.mgr().and(cube, scc).is_false() {
                            states.push(id as u64);
                        }
                    }
                    states
                })
                .collect();
            symbolic.sort();
            prop_assert_eq!(&symbolic, &explicit, "algorithm {:?}", algo);
        }
    }

    #[test]
    fn synthesis_outcomes_always_verify(rp in arb_protocol(0)) {
        // Empty action set: closure holds trivially, so every instance is
        // a valid Problem III.1 input (if I is non-empty).
        let Some((p, i_expr)) = rp.build() else { return Ok(()); };
        let problem = AddConvergence::new(p.clone(), i_expr.clone()).unwrap();
        match problem.synthesize(&Options::default()) {
            Ok(mut outcome) => {
                prop_assert!(outcome.verify_strong(), "verification failed");
                prop_assert!(outcome.preserves_i_behavior());
                // The extracted protocol passes the explicit model check.
                let pss = outcome.extract_protocol();
                let report =
                    stsyn_repro::protocol::explicit::check_convergence(&pss, &i_expr);
                prop_assert!(report.strongly_converges(), "explicit check failed");
            }
            Err(SynthesisError::EmptyInvariant) => {}
            Err(SynthesisError::NoStabilizingVersion { .. }) => {
                // Cross-check with the explicit oracle: the maximal
                // candidate relation really cannot reach I from everywhere.
                let i_set = predicate_states(&p, &i_expr);
                prop_assert!(i_set.count() > 0, "empty I must raise EmptyInvariant");
                // Build p_im explicitly: all transitions whose source is
                // outside I and that respect some process's locality.
                let mut edges = Vec::new();
                let space = p.space();
                for (sid, s) in space.states().enumerate() {
                    if i_expr.holds(&s) { continue; }
                    for j in 0..p.num_processes() {
                        for g in stsyn_repro::protocol::group::all_groups_of(&p, ProcIdx(j)) {
                            if g.is_self_loop(&p) || !g.applies_to(&p, &s) {
                                continue;
                            }
                            // C1: no groupmate may start in I.
                            let source_ok = space
                                .states()
                                .filter(|s2| g.applies_to(&p, s2))
                                .all(|s2| !i_expr.holds(&s2));
                            if source_ok {
                                edges.push((sid as u64, space.encode(&g.apply(&p, &s))));
                            }
                        }
                    }
                }
                let n = space.size() as usize;
                let graph = ExplicitGraph::from_edges(n, edges);
                let ranks = graph.backward_ranks(&i_set);
                let unreachable = ranks.iter().filter(|&&r| r == u32::MAX).count();
                prop_assert!(unreachable > 0, "explicit oracle says weakly stabilizable");
            }
            Err(SynthesisError::DeadlocksRemain { .. }) => {
                // Heuristic incompleteness — allowed; nothing to check.
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn weak_verdict_matches_explicit_reachability(rp in arb_protocol(0)) {
        let Some((p, i_expr)) = rp.build() else { return Ok(()); };
        let i_set = predicate_states(&p, &i_expr);
        if i_set.count() == 0 { return Ok(()); }
        let problem = AddConvergence::new(p.clone(), i_expr.clone()).unwrap();
        match problem.synthesize_weak() {
            Ok(mut outcome) => {
                prop_assert!(outcome.verify_weak());
                prop_assert!(outcome.preserves_i_behavior());
            }
            Err(SynthesisError::NoStabilizingVersion { unreachable_states }) => {
                prop_assert!(unreachable_states > 0.0);
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn schedules_never_affect_soundness(rp in arb_protocol(0)) {
        let Some((p, i_expr)) = rp.build() else { return Ok(()); };
        let k = p.num_processes();
        let problem = AddConvergence::new(p, i_expr).unwrap();
        for schedule in Schedule::all_rotations(k) {
            if let Ok(mut outcome) = problem.synthesize_with(&Options::default(), schedule) {
                prop_assert!(outcome.verify_strong());
                prop_assert!(outcome.preserves_i_behavior());
            }
        }
    }
}

#[test]
fn stateset_iter_roundtrip() {
    // Deterministic sanity for the helper the property tests lean on.
    let mut s = StateSet::empty(100);
    for id in [0u64, 63, 64, 99] {
        s.insert(id);
    }
    let collected: Vec<u64> = s.iter().collect();
    assert_eq!(collected, vec![0, 63, 64, 99]);
}
