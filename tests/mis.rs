//! Maximal independent set: synthesis of a workload the paper never saw —
//! the generalization test for the method.

use stsyn_repro::cases::mis;
use stsyn_repro::protocol::explicit::check_convergence;
use stsyn_repro::synth::analysis::{local_correctability, LocalCorrectability};
use stsyn_repro::synth::{AddConvergence, Options, Schedule};

#[test]
fn mis_synthesizes_and_verifies() {
    // k = 4 is excluded: see `mis4_documents_heuristic_incompleteness`.
    for k in [3usize, 5, 6] {
        let (p, i) = mis(k);
        let problem = AddConvergence::new(p, i.clone()).unwrap();
        let mut outcome = problem
            .synthesize(&Options::default())
            .unwrap_or_else(|e| panic!("MIS k={k} failed: {e}"));
        assert!(outcome.verify_strong(), "k = {k}");
        assert!(outcome.preserves_i_behavior(), "k = {k}");
        let pss = outcome.extract_protocol();
        assert!(check_convergence(&pss, &i).strongly_converges(), "k = {k}");
    }
}

#[test]
fn mis4_documents_heuristic_incompleteness() {
    // The 4-ring MIS (only two legitimate states, ⟨1,0,1,0⟩ and
    // ⟨0,1,0,1⟩) is a live witness for §V's "Comment on completeness":
    // a weakly stabilizing version exists (ComputeRanks completes — see
    // `mis_weak_synthesis_succeeds`), but the conservative cycle
    // resolution strands deadlock states under *every* schedule, so the
    // heuristic reports failure rather than an unsound result.
    use stsyn_repro::synth::SynthesisError;
    let (p, i) = mis(4);
    let problem = AddConvergence::new(p, i).unwrap();
    match problem.synthesize_parallel(&Options::default(), Schedule::all_rotations(4)) {
        Err(SynthesisError::AllSchedulesFailed(inner)) => {
            assert!(matches!(*inner, SynthesisError::DeadlocksRemain { .. }));
        }
        Ok(_) => panic!("expected incompleteness on MIS(4)"),
        Err(other) => panic!("expected DeadlocksRemain, got {other}"),
    }
}

#[test]
fn mis_is_not_locally_correctable() {
    // Maximality couples neighbours exactly like matching does.
    let (p, i) = mis(5);
    assert_ne!(local_correctability(&p, &i), LocalCorrectability::Yes);
}

#[test]
fn mis_weak_synthesis_succeeds() {
    let (p, i) = mis(5);
    let problem = AddConvergence::new(p, i).unwrap();
    let mut outcome = problem.synthesize_weak().unwrap();
    assert!(outcome.verify_weak());
}
