//! §V end-to-end: adding convergence to the 4-process token ring with the
//! paper's schedule `(P1, P2, P3, P0)` must produce Dijkstra's protocol.

use stsyn_cases::{dijkstra_token_ring, token_ring};
use stsyn_core::{AddConvergence, Options, Schedule};
use stsyn_protocol::ProcIdx;
use stsyn_symbolic::SymbolicContext;

#[test]
fn synthesized_tr4_equals_dijkstra() {
    let (p, s1) = token_ring(4, 3);
    let problem = AddConvergence::new(p, s1).unwrap();
    // The paper's recovery schedule (P1, P2, P3, P0) is the default.
    let mut outcome = problem.synthesize(&Options::default()).unwrap();
    assert!(outcome.verify_strong());
    assert!(outcome.preserves_i_behavior());

    // Pass 1 adds nothing for TR (the paper: "We could not add any
    // recovery transitions in the first phase"); the solution lands in
    // pass 2.
    assert_eq!(outcome.stats.finished_in_pass, 2);

    // Relation-level equality with Dijkstra's manual protocol.
    let (dijkstra, _) = dijkstra_token_ring(4, 3);
    let pss_rel = outcome.pss;
    let ctx = outcome.ctx();
    // Encode Dijkstra's actions in the *same* context by replacing the
    // action set of the context's protocol.
    let mut d_ctx = SymbolicContext::new(dijkstra);
    let d_rel = d_ctx.protocol_relation();
    // The two contexts allocate identical variable layouts (same variable
    // order and domains), so raw BDD comparison via an isomorphic rebuild
    // is valid: compare by transition-set equality through evaluation.
    let p_explicit = stsyn_protocol::explicit::ExplicitGraph::of_protocol(ctx.protocol());
    let _ = p_explicit;
    assert_eq!(
        ctx.mgr_ref().node_count(pss_rel),
        d_ctx.mgr_ref().node_count(d_rel),
        "same DAG shape expected for identical relations under identical encodings"
    );
    // Decisive check: state-by-state successor equality.
    let (dijkstra, _) = dijkstra_token_ring(4, 3);
    let synthesized = outcome.extract_protocol();
    for s in synthesized.space().states() {
        let mut a = synthesized.successors(&s);
        let mut b = dijkstra.successors(&s);
        a.sort();
        b.sort();
        assert_eq!(a, b, "successor mismatch at {s:?}");
    }
}

#[test]
fn tr_scales_to_five_processes() {
    // The paper synthesizes Dijkstra's ring up to 5 processes.
    let (p, s1) = token_ring(5, 4);
    let problem = AddConvergence::new(p, s1).unwrap();
    let mut outcome = problem.synthesize(&Options::default()).unwrap();
    assert!(outcome.verify_strong());
    assert!(outcome.preserves_i_behavior());
    assert!(outcome.stats.groups_added > 0);
}

#[test]
fn tr_with_rotated_schedules_also_succeeds() {
    // Alternative schedules give (possibly different) correct solutions —
    // the paper reports three distinct synthesized TR versions.
    for r in 0..4 {
        let (p, s1) = token_ring(4, 3);
        let problem = AddConvergence::new(p, s1).unwrap();
        let mut outcome =
            problem.synthesize_with(&Options::default(), Schedule::rotated(4, r)).unwrap();
        assert!(outcome.verify_strong(), "schedule rotation {r}");
        assert!(outcome.preserves_i_behavior(), "schedule rotation {r}");
    }
}

#[test]
fn synthesized_tr_recovery_actions_mention_only_local_variables() {
    let (p, s1) = token_ring(4, 3);
    let problem = AddConvergence::new(p.clone(), s1).unwrap();
    let outcome = problem.synthesize(&Options::default()).unwrap();
    let pss = outcome.extract_protocol();
    for a in pss.actions() {
        let proc = &pss.processes()[a.process.0];
        for v in a.guard.vars() {
            assert!(proc.reads.contains(&v));
        }
        for (t, rhs) in &a.assigns {
            assert!(proc.writes.contains(t));
            for v in rhs.vars() {
                assert!(proc.reads.contains(&v));
            }
        }
    }
    let _ = ProcIdx(0);
}
