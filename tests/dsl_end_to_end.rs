//! The tool path: protocol files → parser → synthesizer → verified output,
//! exactly what the `stsyn` binary does.

use stsyn_repro::protocol::dsl;
use stsyn_repro::synth::{AddConvergence, Options};

fn synthesize_file(path: &str) -> stsyn_repro::synth::Outcome {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let parsed = dsl::parse(&src).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let problem = AddConvergence::new(parsed.protocol, parsed.invariant).unwrap();
    problem.synthesize(&Options::default()).unwrap_or_else(|e| panic!("synthesize {path}: {e}"))
}

#[test]
fn token_ring_file() {
    let mut outcome = synthesize_file("examples/protocols/token_ring4.stsyn");
    assert!(outcome.verify_strong());
    assert_eq!(outcome.stats.finished_in_pass, 2);
}

#[test]
fn coloring_file() {
    let mut outcome = synthesize_file("examples/protocols/coloring5.stsyn");
    assert!(outcome.verify_strong());
    assert_eq!(outcome.stats.sccs_found, 0);
}

#[test]
fn matching_file() {
    let mut outcome = synthesize_file("examples/protocols/matching5.stsyn");
    assert!(outcome.verify_strong());
    assert!(outcome.stats.sccs_found > 0);
}

#[test]
fn two_ring_file() {
    // Multi-assignment actions (a0 := …, turn := …) through the full
    // pipeline.
    let mut outcome = synthesize_file("examples/protocols/two_ring_2x3.stsyn");
    assert!(outcome.verify_strong());
    assert!(outcome.preserves_i_behavior());
}

#[test]
fn dsl_value_names_survive_to_output() {
    let src = std::fs::read_to_string("examples/protocols/matching5.stsyn").unwrap();
    let parsed = dsl::parse(&src).unwrap();
    let problem = AddConvergence::new(parsed.protocol, parsed.invariant).unwrap();
    let outcome = problem.synthesize(&Options::default()).unwrap();
    let text = outcome.describe_recovery();
    assert!(text.contains("left") && text.contains("right") && text.contains("self"), "{text}");
}

#[test]
fn unclosed_invariant_in_file_is_rejected() {
    let src = r#"
        protocol Bad {
          var a : 0..2;
          process P0 reads a writes a {
            when a == 0 then a := 1;
          }
          invariant a == 0;
        }
    "#;
    let parsed = dsl::parse(src).unwrap();
    let problem = AddConvergence::new(parsed.protocol, parsed.invariant).unwrap();
    assert!(matches!(
        problem.synthesize(&Options::default()),
        Err(stsyn_repro::synth::SynthesisError::NotClosed)
    ));
}
