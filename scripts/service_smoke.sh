#!/usr/bin/env bash
# Service smoke test: drive a real `stsyn serve` daemon with the client
# CLI against the repository's example protocols, diff every service
# result against a direct single-shot run, and prove one SIGKILL +
# restart cycle resumes to the identical bytes.
#
# Usage: scripts/service_smoke.sh [path-to-stsyn-binary]
set -euo pipefail

STSYN=${1:-target/release/stsyn}
WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
    "$STSYN" serve --addr 127.0.0.1:0 --workers 2 --state-dir "$WORK/state" \
        --print-addr >"$WORK/daemon.out" &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/^listening on //p' "$WORK/daemon.out")
        [ -n "$ADDR" ] && return 0
        sleep 0.1
    done
    echo "FAIL: daemon never printed its address" >&2
    exit 1
}

client() {
    "$STSYN" client --addr "$ADDR" "$@"
}

echo "== direct single-shot reference runs =="
CASES="coloring5 matching5 token_ring4"
for case in $CASES; do
    "$STSYN" "examples/protocols/$case.stsyn" --quiet \
        --emit-dsl "$WORK/$case.direct.stsyn" >/dev/null
done

echo "== daemon: submit the case studies over the wire =="
start_daemon
for case in $CASES; do
    client submit "examples/protocols/$case.stsyn" --wait --quiet \
        --emit-dsl "$WORK/$case.served.stsyn" >/dev/null
done
for case in $CASES; do
    if ! diff -q "$WORK/$case.direct.stsyn" "$WORK/$case.served.stsyn" >/dev/null; then
        echo "FAIL: service result for $case differs from the direct run" >&2
        exit 1
    fi
    echo "OK: $case service result identical to direct run"
done
client stats

echo "== metrics scrape =="
METRICS=$(client metrics)
echo "$METRICS" | grep -q '^stsyn_jobs_accepted_total 3$' \
    || { echo "FAIL: metrics did not count 3 accepted jobs" >&2; exit 1; }
echo "$METRICS" | grep -q '^stsyn_jobs_completed_total 3$' \
    || { echo "FAIL: metrics did not count 3 completed jobs" >&2; exit 1; }
echo "$METRICS" | grep -q '^# TYPE stsyn_queue_depth gauge$' \
    || { echo "FAIL: metrics exposition lacks TYPE lines" >&2; exit 1; }
echo "OK: metrics verb serves Prometheus text"

echo "== SIGKILL mid-job, restart, resume =="
client submit --case coloring --n 20 >/dev/null   # long job -> id 4
JOURNAL="$WORK/state/jobs/00000004/ckpt/journal.bin"
for _ in $(seq 1 200); do
    [ -f "$JOURNAL" ] && break
    sleep 0.05
done
[ -f "$JOURNAL" ] || { echo "FAIL: job never started journaling" >&2; exit 1; }
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

: >"$WORK/daemon.out"
start_daemon
client result 4 >/dev/null 2>&1 || true   # may still be resuming
for _ in $(seq 1 600); do
    STATE=$(client status 4 | sed 's/^job 4: //')
    [ "$STATE" = "done" ] && break
    sleep 0.5
done
[ "$STATE" = "done" ] || { echo "FAIL: resumed job stuck in state $STATE" >&2; exit 1; }
client result 4 --quiet --emit-dsl "$WORK/coloring20.resumed.stsyn" >/dev/null
"$STSYN" "examples/protocols/coloring5.stsyn" --quiet >/dev/null  # sanity: CLI still fine

# Reference: direct run of the same case via the client-equivalent spec.
"$STSYN" client --addr "$ADDR" stats | grep -q "resumed *1" \
    || { echo "FAIL: daemon did not count the resumed job" >&2; exit 1; }
client submit --case coloring --n 20 --wait --quiet \
    --emit-dsl "$WORK/coloring20.fresh.stsyn" >/dev/null
if ! diff -q "$WORK/coloring20.resumed.stsyn" "$WORK/coloring20.fresh.stsyn" >/dev/null; then
    echo "FAIL: resumed result differs from an uninterrupted run" >&2
    exit 1
fi
echo "OK: killed-and-resumed job byte-identical to uninterrupted run"

client shutdown --mode drain >/dev/null
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "service smoke test passed"
