#!/usr/bin/env bash
# Service smoke test: drive a real `stsyn serve` daemon with the client
# CLI against the repository's example protocols, diff every service
# result against a direct single-shot run, and prove one SIGKILL +
# restart cycle resumes to the identical bytes. Also exercises the
# self-healing paths: a poison job must quarantine without taking the
# daemon down, and an over-cap connection must get a typed `busy`
# rejection (client exit code 7).
#
# Usage: scripts/service_smoke.sh [path-to-stsyn-binary]
set -euo pipefail

STSYN=${1:-target/release/stsyn}
WORK=$(mktemp -d)
DAEMON_PID=""
FLEET_PIDS=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    for pid in $FLEET_PIDS; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
    "$STSYN" serve --addr 127.0.0.1:0 --workers 2 --state-dir "$WORK/state" \
        --quarantine-after 2 --print-addr >"$WORK/daemon.out" &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/^listening on //p' "$WORK/daemon.out")
        [ -n "$ADDR" ] && return 0
        sleep 0.1
    done
    echo "FAIL: daemon never printed its address" >&2
    exit 1
}

client() {
    "$STSYN" client --addr "$ADDR" "$@"
}

echo "== direct single-shot reference runs =="
CASES="coloring5 matching5 token_ring4"
for case in $CASES; do
    "$STSYN" "examples/protocols/$case.stsyn" --quiet \
        --emit-dsl "$WORK/$case.direct.stsyn" >/dev/null
done

echo "== daemon: submit the case studies over the wire =="
start_daemon
for case in $CASES; do
    client submit "examples/protocols/$case.stsyn" --wait --quiet \
        --emit-dsl "$WORK/$case.served.stsyn" >/dev/null
done
for case in $CASES; do
    if ! diff -q "$WORK/$case.direct.stsyn" "$WORK/$case.served.stsyn" >/dev/null; then
        echo "FAIL: service result for $case differs from the direct run" >&2
        exit 1
    fi
    echo "OK: $case service result identical to direct run"
done
client stats

echo "== metrics scrape =="
METRICS=$(client metrics)
echo "$METRICS" | grep -q '^stsyn_jobs_accepted_total 3$' \
    || { echo "FAIL: metrics did not count 3 accepted jobs" >&2; exit 1; }
echo "$METRICS" | grep -q '^stsyn_jobs_completed_total 3$' \
    || { echo "FAIL: metrics did not count 3 completed jobs" >&2; exit 1; }
echo "$METRICS" | grep -q '^# TYPE stsyn_queue_depth gauge$' \
    || { echo "FAIL: metrics exposition lacks TYPE lines" >&2; exit 1; }
echo "OK: metrics verb serves Prometheus text"

echo "== poison job: crashes its worker, lands in quarantine =="
client submit --case __crash__ --n 3 >/dev/null   # deliberate panic -> id 4
QSTATE=""
for _ in $(seq 1 200); do
    QSTATE=$(client status 4 | sed 's/^job 4: //')
    [ "$QSTATE" = "quarantined" ] && break
    sleep 0.05
done
[ "$QSTATE" = "quarantined" ] \
    || { echo "FAIL: poison job stuck in state $QSTATE, expected quarantined" >&2; exit 1; }
[ -f "$WORK/state/quarantine/00000004/quarantine.json" ] \
    || { echo "FAIL: quarantined job dir was not moved aside" >&2; exit 1; }
client stats | grep -q "quarantined *1" \
    || { echo "FAIL: stats did not count the quarantined job" >&2; exit 1; }
client metrics | grep -q '^stsyn_jobs_quarantined_total 1$' \
    || { echo "FAIL: metrics did not count the quarantined job" >&2; exit 1; }
# The pool must still serve after eating the poison job.
client submit "examples/protocols/coloring5.stsyn" --wait --quiet \
    --emit-dsl "$WORK/coloring5.after-poison.stsyn" >/dev/null
diff -q "$WORK/coloring5.direct.stsyn" "$WORK/coloring5.after-poison.stsyn" >/dev/null \
    || { echo "FAIL: post-quarantine result differs from the direct run" >&2; exit 1; }
echo "OK: poison job quarantined after 2 crashes; pool kept serving"

echo "== SIGKILL mid-job, restart, resume =="
client submit --case coloring --n 20 >/dev/null   # long job -> id 6
JOURNAL="$WORK/state/jobs/00000006/ckpt/journal.bin"
for _ in $(seq 1 200); do
    [ -f "$JOURNAL" ] && break
    sleep 0.05
done
[ -f "$JOURNAL" ] || { echo "FAIL: job never started journaling" >&2; exit 1; }
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

: >"$WORK/daemon.out"
start_daemon
client result 6 >/dev/null 2>&1 || true   # may still be resuming
for _ in $(seq 1 600); do
    STATE=$(client status 6 | sed 's/^job 6: //')
    [ "$STATE" = "done" ] && break
    sleep 0.5
done
[ "$STATE" = "done" ] || { echo "FAIL: resumed job stuck in state $STATE" >&2; exit 1; }
client result 6 --quiet --emit-dsl "$WORK/coloring20.resumed.stsyn" >/dev/null
"$STSYN" "examples/protocols/coloring5.stsyn" --quiet >/dev/null  # sanity: CLI still fine
# Quarantine state must survive the restart too.
[ "$(client status 4 | sed 's/^job 4: //')" = "quarantined" ] \
    || { echo "FAIL: quarantine did not survive the restart" >&2; exit 1; }

# Reference: direct run of the same case via the client-equivalent spec.
"$STSYN" client --addr "$ADDR" stats | grep -q "resumed *1" \
    || { echo "FAIL: daemon did not count the resumed job" >&2; exit 1; }
client submit --case coloring --n 20 --wait --quiet \
    --emit-dsl "$WORK/coloring20.fresh.stsyn" >/dev/null
if ! diff -q "$WORK/coloring20.resumed.stsyn" "$WORK/coloring20.fresh.stsyn" >/dev/null; then
    echo "FAIL: resumed result differs from an uninterrupted run" >&2
    exit 1
fi
echo "OK: killed-and-resumed job byte-identical to uninterrupted run"

client shutdown --mode drain >/dev/null
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "== connection cap: over-cap client gets a typed busy rejection =="
"$STSYN" serve --addr 127.0.0.1:0 --workers 1 --max-conns 1 \
    --state-dir "$WORK/state-busy" --print-addr >"$WORK/daemon-busy.out" &
DAEMON_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$WORK/daemon-busy.out")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: busy daemon never printed its address" >&2; exit 1; }
# Pin the single connection slot with a raw idle socket...
exec 9<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}"
sleep 0.2
# ...then a fail-fast client must be rejected with `busy` and exit 7.
set +e
BUSY_ERR=$(client --retries 0 stats 2>&1 >/dev/null)
BUSY_CODE=$?
set -e
[ "$BUSY_CODE" -eq 7 ] \
    || { echo "FAIL: over-cap client exited $BUSY_CODE, expected 7" >&2; exit 1; }
echo "$BUSY_ERR" | grep -qi "busy" \
    || { echo "FAIL: rejection was not typed busy: $BUSY_ERR" >&2; exit 1; }
exec 9>&- 9<&-
sleep 0.2
client stats >/dev/null \
    || { echo "FAIL: daemon unhealthy after freeing the connection slot" >&2; exit 1; }
echo "OK: connection cap rejected with typed busy; slot freed cleanly"

client shutdown --mode drain >/dev/null
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "== watch: live progress stream + latency histograms =="
"$STSYN" serve --addr 127.0.0.1:0 --workers 1 --state-dir "$WORK/state-watch" \
    --print-addr >"$WORK/daemon-watch.out" &
DAEMON_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$WORK/daemon-watch.out")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: watch daemon never printed its address" >&2; exit 1; }
# A long job pins the single worker so the watch attaches while the
# target is still queued — live detail frames only flow while a watcher
# is on the job's bus, so this is what guarantees rank layers are seen.
client submit --case coloring --n 12 >/dev/null
WATCH_ID=$(client submit --case token_ring --n 4 | sed 's/^submitted job //')
client watch "$WATCH_ID" >"$WORK/watch.out"
grep -q "^job $WATCH_ID: done$" "$WORK/watch.out" \
    || { echo "FAIL: watch did not end on a done status:" >&2; cat "$WORK/watch.out" >&2; exit 1; }
grep -q "rank.layer" "$WORK/watch.out" \
    || { echo "FAIL: watch stream carried no rank.layer frames:" >&2; cat "$WORK/watch.out" >&2; exit 1; }
echo "OK: watch streamed $(grep -c 'rank.layer' "$WORK/watch.out") rank layers, then the terminal status"
# The finished jobs populated the log-bucketed latency histograms.
WATCH_METRICS=$(client metrics)
echo "$WATCH_METRICS" | grep -q '^stsyn_queue_wait_seconds_bucket{le="+Inf"} ' \
    || { echo "FAIL: metrics lack the queue-wait latency histogram" >&2; exit 1; }
echo "$WATCH_METRICS" | grep -q '^# TYPE stsyn_run_seconds histogram$' \
    || { echo "FAIL: metrics lack the run-time histogram TYPE line" >&2; exit 1; }
echo "$WATCH_METRICS" | grep -Eq '^stsyn_submit_to_result_seconds_count [1-9]' \
    || { echo "FAIL: submit-to-result histogram counted no jobs" >&2; exit 1; }
echo "OK: latency histograms exposed in Prometheus text"
client shutdown --mode drain >/dev/null
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "== artifact store: resubmission hits, gc, offline verify =="
"$STSYN" serve --addr 127.0.0.1:0 --workers 1 --state-dir "$WORK/state-store" \
    --store-dir "$WORK/state-store/store" --print-addr >"$WORK/daemon-store.out" &
DAEMON_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$WORK/daemon-store.out")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: store daemon never printed its address" >&2; exit 1; }
client submit "examples/protocols/coloring5.stsyn" --wait --quiet \
    --emit-dsl "$WORK/coloring5.cold.stsyn" >/dev/null
# Same workload again: answered from the store, no second execution.
client submit "examples/protocols/coloring5.stsyn" --wait --quiet \
    --emit-dsl "$WORK/coloring5.hit.stsyn" >/dev/null
diff -q "$WORK/coloring5.cold.stsyn" "$WORK/coloring5.hit.stsyn" >/dev/null \
    || { echo "FAIL: store-hit result differs from the cold run" >&2; exit 1; }
client metrics | grep -q '^stsyn_store_hits_total 1$' \
    || { echo "FAIL: metrics did not count the store hit" >&2; exit 1; }
"$STSYN" store stats --addr "$ADDR" | grep -Eq '^entries *1$' \
    || { echo "FAIL: store stats does not report 1 entry" >&2; exit 1; }
# A 1-byte cap evicts the entry; the next resubmission runs fresh.
"$STSYN" store gc --addr "$ADDR" --cap-bytes 1 | grep -Eq '^evicted *1$' \
    || { echo "FAIL: store gc did not evict the entry" >&2; exit 1; }
client submit "examples/protocols/coloring5.stsyn" --wait --quiet \
    --emit-dsl "$WORK/coloring5.post-gc.stsyn" >/dev/null
diff -q "$WORK/coloring5.cold.stsyn" "$WORK/coloring5.post-gc.stsyn" >/dev/null \
    || { echo "FAIL: post-gc rerun differs from the cold run" >&2; exit 1; }
client metrics | grep -q '^stsyn_store_hits_total 1$' \
    || { echo "FAIL: evicted entry still answered a resubmission" >&2; exit 1; }
echo "OK: resubmission hit the store; gc evicted; rerun byte-identical"
client shutdown --mode drain >/dev/null
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
"$STSYN" store verify --dir "$WORK/state-store/store" \
    || { echo "FAIL: offline store verify reported corruption" >&2; exit 1; }
echo "OK: offline store verify clean"

echo "== fleet: 3 shards behind a router, one SIGKILLed mid-job =="
SHARD_ADDRS=""
SHARD_PIDS=""
for i in 0 1 2; do
    "$STSYN" serve --addr 127.0.0.1:0 --workers 1 --state-dir "$WORK/fleet-shard$i" \
        --print-addr >"$WORK/shard$i.out" &
    pid=$!
    FLEET_PIDS="$FLEET_PIDS $pid"
    SHARD_PIDS="$SHARD_PIDS $pid"
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$WORK/shard$i.out")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "FAIL: shard $i never printed its address" >&2; exit 1; }
    SHARD_ADDRS="$SHARD_ADDRS $addr"
done
# shellcheck disable=SC2086  # the addr list is deliberately word-split
"$STSYN" route $(for a in $SHARD_ADDRS; do printf -- '--shard %s ' "$a"; done) \
    --addr 127.0.0.1:0 --probe-interval-ms 100 --down-after 2 --print-addr \
    >"$WORK/router.out" &
ROUTER_PID=$!
FLEET_PIDS="$FLEET_PIDS $ROUTER_PID"
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$WORK/router.out")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: router never printed its address" >&2; exit 1; }
PONG=$(client ping)
echo "$PONG" | grep -q "router" \
    || { echo "FAIL: router ping did not identify as router" >&2; exit 1; }

# A long job through the router; find the shard actually running it.
client submit --case coloring --n 20 >/dev/null   # -> router id 1
for _ in $(seq 1 200); do
    STATE=$(client status 1 | sed 's/^job 1: //')
    [ "$STATE" = "running" ] && break
    sleep 0.05
done
[ "$STATE" = "running" ] || { echo "FAIL: fleet job never started running" >&2; exit 1; }
VICTIM_PID=""
idx=0
for a in $SHARD_ADDRS; do
    idx=$((idx + 1))
    # Capture before grepping: `grep -q` closing the pipe early would
    # EPIPE the client mid-print under pipefail.
    shard_stats=$("$STSYN" client --addr "$a" stats)
    if echo "$shard_stats" | grep -Eq '^running *1$'; then
        VICTIM_PID=$(echo $SHARD_PIDS | cut -d' ' -f$idx)
        VICTIM_ADDR=$a
    fi
done
[ -n "$VICTIM_PID" ] || { echo "FAIL: no shard reports the running job" >&2; exit 1; }
kill -9 "$VICTIM_PID"
echo "killed shard $VICTIM_ADDR (pid $VICTIM_PID) mid-job"

# The job must still complete through the router (failover resubmits it
# under the same idempotency key to a surviving shard).
STATE=""
for _ in $(seq 1 600); do
    STATE=$(client status 1 | sed 's/^job 1: //')
    [ "$STATE" = "done" ] && break
    sleep 0.5
done
[ "$STATE" = "done" ] \
    || { echo "FAIL: fleet job stuck in state $STATE after shard kill" >&2; exit 1; }
client result 1 --quiet --emit-dsl "$WORK/fleet.failover.stsyn" >/dev/null
# Same workload again, post-kill: the surviving fleet must produce
# byte-identical output.
client submit --case coloring --n 20 --wait --quiet \
    --emit-dsl "$WORK/fleet.fresh.stsyn" >/dev/null
diff -q "$WORK/fleet.failover.stsyn" "$WORK/fleet.fresh.stsyn" >/dev/null \
    || { echo "FAIL: failover result differs from a post-kill run" >&2; exit 1; }
echo "OK: job survived its shard's SIGKILL with byte-identical result"

FLEET_STATS=$(client fleet-stats)
echo "$FLEET_STATS" | grep -q "down" \
    || { echo "FAIL: fleet-stats does not show the killed shard as down" >&2; exit 1; }
echo "$FLEET_STATS" | grep -Eq '^failovers *[1-9]' \
    || { echo "FAIL: fleet-stats counted no failover" >&2; exit 1; }
FLEET_METRICS=$(client fleet-metrics)
echo "$FLEET_METRICS" | grep -q '^stsyn_fleet_shards_down 1$' \
    || { echo "FAIL: fleet-metrics does not count 1 down shard" >&2; exit 1; }
echo "OK: fleet-stats/fleet-metrics report the down shard and the failover"

# Kill the survivors too: a fail-fast client must get a typed answer and
# exit code 8, not a hang.
for pid in $SHARD_PIDS; do kill -9 "$pid" 2>/dev/null || true; done
FLEET_CODE=0
for _ in $(seq 1 100); do
    set +e
    client --retries 0 status 1 >/dev/null 2>&1
    FLEET_CODE=$?
    set -e
    [ "$FLEET_CODE" -eq 8 ] && break
    sleep 0.1
done
[ "$FLEET_CODE" -eq 8 ] \
    || { echo "FAIL: dead-fleet client exited $FLEET_CODE, expected 8" >&2; exit 1; }
echo "OK: dead fleet answers typed errors (exit 8), router never hangs"

client shutdown >/dev/null 2>&1 || true
wait "$ROUTER_PID" 2>/dev/null || true
echo "service smoke test passed"
